//! Chrome trace-event JSON export, loadable in Perfetto and
//! `chrome://tracing`.
//!
//! We emit the JSON-object flavour of the format: a `traceEvents` array
//! plus `otherData` for run-level metadata (drop counts, schema
//! version). Timestamps and durations are microseconds with fractional
//! nanosecond precision, per the spec. Each [`ThreadTrack`] becomes a
//! named thread lane (via a `"M"` metadata event); counter events
//! (`"C"`) become counter tracks Perfetto plots as line graphs.
//!
//! [`ThreadTrack`]: crate::tracer::ThreadTrack

use crate::json::Json;
use crate::tracer::{Event, Phase, TraceData};

/// Process id used for all events (the pipeline is one process).
const PID: u64 = 1;

/// Schema marker stored in `otherData.format`.
pub const CHROME_TRACE_FORMAT: &str = "elfie-trace";
/// Version stored in `otherData.version`; bump on breaking changes.
pub const CHROME_TRACE_VERSION: u64 = 1;

fn micros(ns: u64) -> Json {
    // Chrome traces are microsecond-based; keep nanosecond precision as
    // a fraction. f64 holds integers exactly to 2^53 µs ≈ 285 years.
    Json::F64(ns as f64 / 1000.0)
}

fn args_json(event: &Event) -> Json {
    Json::Obj(
        event
            .args
            .entries()
            .iter()
            .map(|&(k, v)| (k.to_string(), Json::U64(v)))
            .collect(),
    )
}

fn event_json(tid: u64, event: &Event) -> Json {
    let mut fields = vec![
        ("name".to_string(), Json::Str(event.full_name())),
        ("cat".to_string(), Json::Str(event.cat.to_string())),
        ("pid".to_string(), Json::U64(PID)),
        ("tid".to_string(), Json::U64(tid)),
        ("ts".to_string(), micros(event.ts_ns)),
    ];
    match event.ph {
        Phase::Span => {
            fields.push(("ph".to_string(), Json::Str("X".to_string())));
            fields.push(("dur".to_string(), micros(event.dur_ns)));
        }
        Phase::Instant => {
            fields.push(("ph".to_string(), Json::Str("i".to_string())));
            // Thread-scoped instant (a small arrow on the thread lane).
            fields.push(("s".to_string(), Json::Str("t".to_string())));
        }
        Phase::Counter => {
            fields.push(("ph".to_string(), Json::Str("C".to_string())));
        }
    }
    fields.push(("args".to_string(), args_json(event)));
    Json::Obj(fields)
}

fn thread_name_json(tid: u64, name: &str) -> Json {
    Json::Obj(vec![
        ("name".to_string(), Json::Str("thread_name".to_string())),
        ("ph".to_string(), Json::Str("M".to_string())),
        ("pid".to_string(), Json::U64(PID)),
        ("tid".to_string(), Json::U64(tid)),
        (
            "args".to_string(),
            Json::Obj(vec![("name".to_string(), Json::Str(name.to_string()))]),
        ),
    ])
}

/// Builds the Chrome trace-event document for a collected trace.
pub fn chrome_trace(data: &TraceData) -> Json {
    let mut events = Vec::new();
    for track in &data.tracks {
        events.push(thread_name_json(track.tid, &track.name));
        for event in &track.events {
            events.push(event_json(track.tid, event));
        }
    }
    Json::Obj(vec![
        ("traceEvents".to_string(), Json::Arr(events)),
        ("displayTimeUnit".to_string(), Json::Str("ms".to_string())),
        (
            "otherData".to_string(),
            Json::Obj(vec![
                (
                    "format".to_string(),
                    Json::Str(CHROME_TRACE_FORMAT.to_string()),
                ),
                ("version".to_string(), Json::U64(CHROME_TRACE_VERSION)),
                ("dropped_events".to_string(), Json::U64(data.dropped)),
                ("ring_capacity".to_string(), Json::U64(data.ring_capacity)),
            ]),
        ),
    ])
}

/// Checks that `doc` looks like a Chrome trace this crate emitted:
/// required top-level keys, and every event carrying the fields a
/// viewer needs. Returns the number of trace events on success.
pub fn check_chrome_trace(doc: &Json) -> Result<usize, String> {
    let events = doc
        .field("traceEvents")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    doc.field("otherData")?.field("dropped_events")?;
    for (i, event) in events.iter().enumerate() {
        let ph = event
            .field("ph")
            .and_then(|p| p.as_str().ok_or_else(|| "`ph` is not a string".into()))
            .map_err(|e| format!("event {i}: {e}"))?;
        for key in ["name", "pid", "tid"] {
            event.field(key).map_err(|e| format!("event {i}: {e}"))?;
        }
        match ph {
            "M" => {}
            "X" => {
                for key in ["ts", "dur", "cat", "args"] {
                    event.field(key).map_err(|e| format!("event {i}: {e}"))?;
                }
            }
            "i" | "C" => {
                for key in ["ts", "cat", "args"] {
                    event.field(key).map_err(|e| format!("event {i}: {e}"))?;
                }
            }
            other => return Err(format!("event {i}: unknown phase `{other}`")),
        }
    }
    Ok(events.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{TraceMode, Tracer};
    use std::sync::Arc;

    fn sample_trace() -> TraceData {
        let tracer = Arc::new(Tracer::new(TraceMode::Full));
        tracer.set_thread_name("main");
        {
            let mut span = tracer.span_labeled("stage", "measure", "r0");
            span.arg("insns", 100);
        }
        tracer.instant("cache", "profile_hit", &[]);
        tracer.counter("vm", "guest_insns", 42);
        tracer.collect()
    }

    #[test]
    fn export_has_expected_shape() {
        let doc = chrome_trace(&sample_trace());
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        // 1 metadata + 3 events.
        assert_eq!(events.len(), 4);
        assert_eq!(check_chrome_trace(&doc), Ok(4));

        let meta = &events[0];
        assert_eq!(meta.get("ph").unwrap().as_str(), Some("M"));
        assert_eq!(
            meta.get("args").unwrap().get("name").unwrap().as_str(),
            Some("main")
        );

        let span = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("X"))
            .unwrap();
        assert_eq!(span.get("name").unwrap().as_str(), Some("measure r0"));
        assert_eq!(span.get("cat").unwrap().as_str(), Some("stage"));
        assert_eq!(
            span.get("args").unwrap().get("insns").unwrap().as_u64(),
            Some(100)
        );
        assert!(span.get("dur").unwrap().as_f64().is_some());

        let counter = events
            .iter()
            .find(|e| e.get("ph").unwrap().as_str() == Some("C"))
            .unwrap();
        assert_eq!(counter.get("name").unwrap().as_str(), Some("guest_insns"));
        assert_eq!(
            counter.get("args").unwrap().get("value").unwrap().as_u64(),
            Some(42)
        );
    }

    #[test]
    fn export_roundtrips_through_parser() {
        let doc = chrome_trace(&sample_trace());
        let text = doc.render_pretty();
        let parsed = Json::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(check_chrome_trace(&parsed), Ok(4));
    }

    #[test]
    fn timestamps_are_microseconds() {
        let data = TraceData {
            tracks: vec![crate::tracer::TrackData {
                tid: 0,
                name: "t".to_string(),
                events: vec![Event {
                    ts_ns: 1_500,
                    dur_ns: 2_000_000,
                    ph: Phase::Span,
                    cat: "c",
                    name: "n",
                    label: None,
                    args: Default::default(),
                }],
            }],
            dropped: 3,
            ring_capacity: 8,
        };
        let doc = chrome_trace(&data);
        let events = doc.get("traceEvents").unwrap().as_arr().unwrap();
        let span = &events[1];
        assert_eq!(span.get("ts").unwrap().as_f64(), Some(1.5));
        assert_eq!(span.get("dur").unwrap().as_f64(), Some(2000.0));
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("dropped_events")
                .unwrap()
                .as_u64(),
            Some(3)
        );
        assert_eq!(
            doc.get("otherData")
                .unwrap()
                .get("ring_capacity")
                .unwrap()
                .as_u64(),
            Some(8)
        );
    }

    #[test]
    fn check_rejects_malformed_events() {
        let doc = Json::parse(r#"{"traceEvents":[{"ph":"X","name":"n","pid":1,"tid":0}],"otherData":{"dropped_events":0}}"#).unwrap();
        assert!(check_chrome_trace(&doc).is_err());
        let doc = Json::parse(r#"{"otherData":{"dropped_events":0}}"#).unwrap();
        assert!(check_chrome_trace(&doc).is_err());
    }
}
