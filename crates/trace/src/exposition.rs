//! Prometheus-compatible text exposition for [`MetricsSnapshot`]s.
//!
//! The renderer emits the subset of the Prometheus text format that the
//! registry can express — `counter`, `gauge`, and `histogram` families —
//! and the parser reads that subset back, so a scraped document
//! round-trips to the snapshot it came from. Grammar per family:
//!
//! ```text
//! # TYPE <name> counter|gauge
//! <name> <integer>
//!
//! # TYPE <name> histogram
//! <name>_bucket{le="<ceil>"} <cumulative>   (one line per non-empty bucket)
//! <name>_bucket{le="+Inf"} <count>
//! <name>_sum <sum>
//! <name>_count <count>
//! ```
//!
//! `le` bounds are the **inclusive** log2 bucket ceilings
//! ([`Histogram::bucket_ceil`]): `0`, `1`, `3`, `7`, …, `2^63 - 1`,
//! `u64::MAX` — so cumulative counts translate to per-bucket counts
//! without rebinning. Names are sanitized to the Prometheus charset
//! (`[a-zA-Z_:][a-zA-Z0-9_:]*`) on render; dots become underscores, so
//! `serve.shard0.queue_depth` exposes as `serve_shard0_queue_depth`.
//! The `_bucket`/`_sum`/`_count` suffixes are reserved for histogram
//! series, as in Prometheus itself.

use std::collections::BTreeMap;

use crate::metrics::{Histogram, HistogramSnapshot, MetricsSnapshot, HISTOGRAM_BUCKETS};

/// Maps a metric name onto the Prometheus charset: the first character
/// must match `[a-zA-Z_:]`, the rest `[a-zA-Z0-9_:]`; anything else
/// becomes `_`. Empty names become `_`.
pub fn sanitize_metric_name(name: &str) -> String {
    if name.is_empty() {
        return "_".to_string();
    }
    name.chars()
        .enumerate()
        .map(|(i, c)| match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => c,
            '0'..='9' if i > 0 => c,
            _ => '_',
        })
        .collect()
}

/// Renders a snapshot as Prometheus exposition text. Families are
/// emitted counters-first, then gauges, then histograms, each in name
/// order; an empty snapshot renders as the empty string.
pub fn render_exposition(snap: &MetricsSnapshot) -> String {
    use std::fmt::Write as _;
    let mut out = String::new();
    for (name, value) in &snap.counters {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} counter\n{name} {value}");
    }
    for (name, value) in &snap.gauges {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} gauge\n{name} {value}");
    }
    for (name, h) in &snap.histograms {
        let name = sanitize_metric_name(name);
        let _ = writeln!(out, "# TYPE {name} histogram");
        let mut cumulative = 0u64;
        for (i, &n) in h.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            cumulative = cumulative.saturating_add(n);
            let le = Histogram::bucket_ceil(i);
            let _ = writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}");
        }
        let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
        let _ = writeln!(out, "{name}_sum {}", h.sum);
        let _ = writeln!(out, "{name}_count {}", h.count());
    }
    out
}

/// What a `# TYPE` line declared a family to be.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

/// Parses exposition text produced by [`render_exposition`] back into a
/// snapshot.
///
/// # Errors
/// Describes the first line that fails to parse: unknown TYPE kinds,
/// samples without a TYPE declaration, non-integer values, `le` bounds
/// that are not log2 bucket ceilings, or histogram series whose
/// cumulative counts disagree with their `_count` line.
pub fn parse_exposition(text: &str) -> Result<MetricsSnapshot, String> {
    let mut kinds: BTreeMap<String, Kind> = BTreeMap::new();
    let mut snap = MetricsSnapshot::default();
    // Histogram series under assembly: cumulative counts per le, sum,
    // and the +Inf/_count totals (which must agree).
    #[derive(Default)]
    struct Partial {
        cumulative: Vec<(u64, u64)>,
        inf: Option<u64>,
        sum: Option<u64>,
        count: Option<u64>,
    }
    let mut partials: BTreeMap<String, Partial> = BTreeMap::new();

    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        let fail = |msg: String| format!("line {}: {msg}", lineno + 1);
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it
                .next()
                .ok_or_else(|| fail("TYPE without a name".into()))?;
            let kind = match it.next() {
                Some("counter") => Kind::Counter,
                Some("gauge") => Kind::Gauge,
                Some("histogram") => Kind::Histogram,
                other => return Err(fail(format!("unknown TYPE kind {other:?}"))),
            };
            kinds.insert(name.to_string(), kind);
            continue;
        }
        if line.starts_with('#') {
            continue; // other comments are legal and ignored
        }
        let (series, value) = line
            .rsplit_once(' ')
            .ok_or_else(|| fail("sample without a value".into()))?;
        let series = series.trim();
        // Split off the optional {labels} block.
        let (name, labels) = match series.split_once('{') {
            Some((n, rest)) => {
                let labels = rest
                    .strip_suffix('}')
                    .ok_or_else(|| fail("unterminated label block".into()))?;
                (n, Some(labels))
            }
            None => (series, None),
        };
        // Exact TYPE matches win; histogram series fall through to
        // suffix resolution against their declared base family.
        match kinds.get(name) {
            Some(Kind::Counter) => {
                let v = value
                    .parse::<u64>()
                    .map_err(|_| fail(format!("counter `{name}`: bad value `{value}`")))?;
                snap.counters.insert(name.to_string(), v);
            }
            Some(Kind::Gauge) => {
                let v = value
                    .parse::<i64>()
                    .map_err(|_| fail(format!("gauge `{name}`: bad value `{value}`")))?;
                snap.gauges.insert(name.to_string(), v);
            }
            Some(Kind::Histogram) => {
                return Err(fail(format!(
                    "histogram `{name}` sampled without a _bucket/_sum/_count suffix"
                )));
            }
            None => {
                let (base, piece) = ["_bucket", "_sum", "_count"]
                    .iter()
                    .find_map(|s| name.strip_suffix(s).map(|b| (b, *s)))
                    .ok_or_else(|| fail(format!("sample `{name}` has no TYPE declaration")))?;
                if kinds.get(base) != Some(&Kind::Histogram) {
                    return Err(fail(format!("sample `{name}` has no TYPE declaration")));
                }
                let partial = partials.entry(base.to_string()).or_default();
                let v = value
                    .parse::<u64>()
                    .map_err(|_| fail(format!("histogram `{base}`: bad value `{value}`")))?;
                match piece {
                    "_sum" => partial.sum = Some(v),
                    "_count" => partial.count = Some(v),
                    _ => {
                        let le = labels
                            .and_then(|l| l.strip_prefix("le=\""))
                            .and_then(|l| l.strip_suffix('"'))
                            .ok_or_else(|| fail(format!("histogram `{base}`: missing le label")))?;
                        if le == "+Inf" {
                            partial.inf = Some(v);
                        } else {
                            let le = le
                                .parse::<u64>()
                                .map_err(|_| fail(format!("histogram `{base}`: bad le `{le}`")))?;
                            let i = Histogram::bucket_index(le);
                            if Histogram::bucket_ceil(i) != le {
                                return Err(fail(format!(
                                    "histogram `{base}`: le {le} is not a bucket ceiling"
                                )));
                            }
                            partial.cumulative.push((le, v));
                        }
                    }
                }
            }
        }
    }

    // Every declared histogram assembles from its series, even when it
    // had no samples at all (count 0, no bucket lines).
    for (name, kind) in &kinds {
        if *kind != Kind::Histogram {
            continue;
        }
        let partial = partials.remove(name).unwrap_or_default();
        let total = partial
            .count
            .ok_or_else(|| format!("histogram `{name}`: missing _count"))?;
        let sum = partial
            .sum
            .ok_or_else(|| format!("histogram `{name}`: missing _sum"))?;
        if partial.inf != Some(total) {
            return Err(format!(
                "histogram `{name}`: le=\"+Inf\" {:?} disagrees with _count {total}",
                partial.inf
            ));
        }
        let mut cumulative = partial.cumulative;
        cumulative.sort_unstable_by_key(|&(le, _)| le);
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        let mut prev = 0u64;
        for (le, cum) in cumulative {
            let count = cum.checked_sub(prev).ok_or_else(|| {
                format!("histogram `{name}`: cumulative counts decrease at le {le}")
            })?;
            buckets[Histogram::bucket_index(le)] = count;
            prev = cum;
        }
        if prev != total {
            return Err(format!(
                "histogram `{name}`: buckets sum to {prev}, _count says {total}"
            ));
        }
        snap.histograms
            .insert(name.clone(), HistogramSnapshot { buckets, sum });
    }
    Ok(snap)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn names_sanitize_to_the_prometheus_charset() {
        assert_eq!(
            sanitize_metric_name("serve.shard0.depth"),
            "serve_shard0_depth"
        );
        assert_eq!(sanitize_metric_name("0leading"), "_leading");
        assert_eq!(sanitize_metric_name(""), "_");
        assert_eq!(sanitize_metric_name("ok_name:x9"), "ok_name:x9");
        assert_eq!(sanitize_metric_name("sp ace/π"), "sp_ace__");
    }

    #[test]
    fn rendered_families_roundtrip() {
        let reg = MetricsRegistry::new();
        reg.counter("serve.requests.ping").add(9);
        reg.gauge("serve.shard0.queue_depth").set(-2);
        let h = reg.histogram("serve.job_latency_ns");
        for v in [0u64, 1, 3, 900, 1 << 40, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let text = render_exposition(&snap);
        assert!(text.contains("# TYPE serve_requests_ping counter"));
        assert!(text.contains("serve_shard0_queue_depth -2"));
        assert!(text.contains("serve_job_latency_ns_bucket{le=\"+Inf\"} 6"));
        let back = parse_exposition(&text).unwrap();
        // Keys come back sanitized; values and buckets are exact.
        assert_eq!(back.counters["serve_requests_ping"], 9);
        assert_eq!(back.gauges["serve_shard0_queue_depth"], -2);
        let hb = &back.histograms["serve_job_latency_ns"];
        assert_eq!(hb, &snap.histograms["serve.job_latency_ns"]);
    }

    #[test]
    fn empty_snapshot_renders_and_parses_as_empty() {
        let empty = MetricsSnapshot::default();
        let text = render_exposition(&empty);
        assert_eq!(text, "");
        assert_eq!(parse_exposition(&text).unwrap(), empty);
    }

    #[test]
    fn empty_histogram_family_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.histogram("quiet");
        let snap = reg.snapshot();
        let back = parse_exposition(&render_exposition(&snap)).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn malformed_documents_are_typed_errors() {
        for (text, what) in [
            ("# TYPE x sideways\n", "unknown TYPE kind"),
            ("orphan 3\n", "no TYPE declaration"),
            ("# TYPE x counter\nx notanumber\n", "bad value"),
            ("# TYPE x histogram\nx 5\n", "without a _bucket"),
            ("# TYPE x histogram\nx_count 0\n", "missing _sum"),
            (
                "# TYPE x histogram\nx_bucket{le=\"5\"} 1\nx_sum 5\nx_count 1\n",
                "not a bucket ceiling",
            ),
            (
                "# TYPE x histogram\nx_bucket{le=\"+Inf\"} 2\nx_sum 5\nx_count 1\n",
                "disagrees with _count",
            ),
        ] {
            let err = parse_exposition(text).unwrap_err();
            assert!(err.contains(what), "{text:?} → {err}");
        }
    }
}
