//! Minimal JSON support shared across the workspace.
//!
//! The build environment has no crates.io access, so every JSON surface —
//! pinball metadata descriptors, Chrome trace-event exports, the versioned
//! `stats.json` schema — is serialised with this hand-rolled module
//! instead of `serde_json`. The encoding mirrors serde's default
//! representation (unit enum variants as strings, newtype variants as
//! single-key objects, map keys as strings) so existing `.meta.json`
//! files stay readable. The module started life inside `elfie-pinball`
//! and moved here when `elfie-trace` became the workspace's bottom layer,
//! so text and JSON renderings of the same statistics can never drift.
//!
//! Integers are kept in distinct `U64`/`I64` variants rather than routed
//! through `f64`, because fields like `brk` (and the trace timestamps)
//! are full-range `u64` values that must round-trip bit-exactly. `F64`
//! renders with `{:?}` — the shortest form that parses back to the same
//! bits — so floating-point stats round-trip bit-exactly too.

use std::fmt::Write as _;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true`/`false`.
    Bool(bool),
    /// Non-negative integer (exact, full `u64` range).
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Fractional or exponent-form number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Looks up `key` in an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Like [`Json::get`] but with a missing-field error.
    pub fn field(&self, key: &str) -> Result<&Json, String> {
        self.get(key)
            .ok_or_else(|| format!("missing field `{key}`"))
    }

    /// The value as `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Json::U64(n) => Some(n),
            Json::I64(n) => u64::try_from(n).ok(),
            _ => None,
        }
    }

    /// The value as `f64` (integers convert).
    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Json::U64(n) => Some(n as f64),
            Json::I64(n) => Some(n as f64),
            Json::F64(x) => Some(x),
            _ => None,
        }
    }

    /// The value as `bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match *self {
            Json::Bool(b) => Some(b),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The object fields, if this is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Renders without whitespace.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Renders with two-space indentation (serde_json pretty style).
    pub fn render_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::U64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::I64(n) => {
                let _ = write!(out, "{n}");
            }
            Json::F64(x) => {
                if x.is_finite() {
                    // `{:?}` is the shortest representation that parses
                    // back to the same bits.
                    let _ = write!(out, "{x:?}");
                } else {
                    out.push_str("null"); // serde_json's lossy default
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                write_seq(out, indent, depth, '[', ']', items.len(), |out, i, d| {
                    items[i].write(out, indent, d);
                });
            }
            Json::Obj(fields) => {
                write_seq(out, indent, depth, '{', '}', fields.len(), |out, i, d| {
                    write_escaped(out, &fields[i].0);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    fields[i].1.write(out, indent, d);
                });
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    /// Returns a description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value(0)?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Parses a JSON document from raw bytes (a socket frame, a file),
    /// validating UTF-8 first. Never panics on arbitrary input.
    ///
    /// # Errors
    /// Returns a description of the invalid UTF-8 or the first syntax
    /// error.
    pub fn parse_bytes(bytes: &[u8]) -> Result<Json, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("invalid utf-8: {e}"))?;
        Json::parse(text)
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    open: char,
    close: char,
    len: usize,
    mut item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(step) = indent {
            out.push('\n');
            for _ in 0..step * (depth + 1) {
                out.push(' ');
            }
        }
        item(out, i, depth + 1);
    }
    if let Some(step) = indent {
        out.push('\n');
        for _ in 0..step * depth {
            out.push(' ');
        }
    }
    out.push(close);
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

const MAX_DEPTH: usize = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected `{}` at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > MAX_DEPTH {
            return Err("nesting too deep".into());
        }
        match self.peek() {
            Some(b'n') => self.keyword("null", Json::Null),
            Some(b't') => self.keyword("true", Json::Bool(true)),
            Some(b'f') => self.keyword("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(b'-') | Some(b'0'..=b'9') => self.number(),
            Some(b) => Err(format!("unexpected `{}` at byte {}", b as char, self.pos)),
            None => Err("unexpected end of input".into()),
        }
    }

    fn keyword(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("bad keyword at byte {}", self.pos))
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected `,` or `]` at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            fields.push((key, self.value(depth + 1)?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected `,` or `}}` at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        let mut start = self.pos;
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    out.push_str(self.utf8_slice(start, self.pos)?);
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    out.push_str(self.utf8_slice(start, self.pos)?);
                    self.pos += 1;
                    out.push(self.escape()?);
                    start = self.pos;
                }
                Some(b) if b < 0x20 => {
                    return Err(format!("raw control byte in string at {}", self.pos));
                }
                Some(_) => self.pos += 1,
            }
        }
    }

    fn utf8_slice(&self, start: usize, end: usize) -> Result<&str, String> {
        std::str::from_utf8(&self.bytes[start..end]).map_err(|_| "invalid UTF-8".to_string())
    }

    fn escape(&mut self) -> Result<char, String> {
        let b = self.peek().ok_or("unterminated escape")?;
        self.pos += 1;
        Ok(match b {
            b'"' => '"',
            b'\\' => '\\',
            b'/' => '/',
            b'b' => '\u{8}',
            b'f' => '\u{c}',
            b'n' => '\n',
            b'r' => '\r',
            b't' => '\t',
            b'u' => {
                let hi = self.hex4()?;
                if (0xd800..0xdc00).contains(&hi) {
                    // Surrogate pair: a second \uXXXX must follow.
                    if self.peek() == Some(b'\\') {
                        self.pos += 1;
                        self.expect(b'u')?;
                        let lo = self.hex4()?;
                        let c = 0x10000 + ((hi - 0xd800) << 10) + (lo.wrapping_sub(0xdc00));
                        return char::from_u32(c).ok_or_else(|| "bad surrogate pair".to_string());
                    }
                    return Err("lone high surrogate".into());
                }
                char::from_u32(hi).ok_or("lone low surrogate")?
            }
            _ => return Err(format!("bad escape `\\{}`", b as char)),
        })
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.pos.checked_add(4).filter(|&e| e <= self.bytes.len());
        let end = end.ok_or("truncated \\u escape")?;
        let s = self.utf8_slice(self.pos, end)?;
        let v = u32::from_str_radix(s, 16).map_err(|_| format!("bad \\u escape `{s}`"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = self.utf8_slice(start, self.pos)?;
        if float {
            text.parse::<f64>()
                .map(Json::F64)
                .map_err(|_| format!("bad number `{text}`"))
        } else if let Some(stripped) = text.strip_prefix('-') {
            stripped
                .parse::<i64>()
                .map(|n| Json::I64(-n))
                .map_err(|_| format!("bad number `{text}`"))
        } else {
            text.parse::<u64>()
                .map(Json::U64)
                .map_err(|_| format!("bad number `{text}`"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalars_roundtrip() {
        for text in [
            "null",
            "true",
            "false",
            "0",
            "42",
            "-7",
            "18446744073709551615",
        ] {
            let v = Json::parse(text).expect(text);
            assert_eq!(v.render(), text);
        }
    }

    #[test]
    fn u64_extremes_are_exact() {
        let v = Json::parse("18446744073709551615").unwrap();
        assert_eq!(v.as_u64(), Some(u64::MAX));
        let v = Json::parse(&u64::MAX.to_string()).unwrap();
        assert_eq!(v.render(), u64::MAX.to_string());
    }

    #[test]
    fn floats_roundtrip_bits() {
        for x in [0.5, 0.1, 1.0, -2.25, 1e-300, 123456.789] {
            let text = Json::F64(x).render();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64().map(f64::to_bits), Some(x.to_bits()), "{text}");
        }
    }

    #[test]
    fn strings_escape_and_unescape() {
        let s = "quote\" back\\ nl\n tab\t bell\u{7} unicode с中€🎯";
        let text = Json::Str(s.into()).render();
        assert_eq!(Json::parse(&text).unwrap().as_str(), Some(s));
    }

    #[test]
    fn surrogate_pair_escapes_parse() {
        assert_eq!(
            Json::parse(r#""\ud83c\udfaf""#).unwrap().as_str(),
            Some("🎯")
        );
        assert!(Json::parse(r#""\ud83c""#).is_err());
    }

    #[test]
    fn objects_preserve_order_and_pretty_print() {
        let v = Json::Obj(vec![
            ("b".into(), Json::U64(1)),
            ("a".into(), Json::Arr(vec![Json::Bool(true), Json::Null])),
        ]);
        assert_eq!(v.render(), r#"{"b":1,"a":[true,null]}"#);
        let pretty = v.render_pretty();
        assert!(pretty.contains("\n  \"b\": 1"));
        assert_eq!(Json::parse(&pretty).unwrap(), v);
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for text in [
            "", "{", "[1,", "{\"a\"}", "tru", "\"\\x\"", "01a", "--2", "1e", "{\"a\":}", "\u{0}",
        ] {
            assert!(Json::parse(text).is_err(), "{text:?}");
        }
    }

    #[test]
    fn deep_nesting_is_rejected() {
        let text = "[".repeat(500) + &"]".repeat(500);
        assert!(Json::parse(&text).is_err());
    }
}
