//! The tracer: spans, instants and counter samples over per-thread
//! lock-free buffers.
//!
//! A [`Tracer`] is shared across the pipeline as `Arc<Tracer>`. Each
//! thread that emits through it gets its own [`EventBuf`] (registered
//! lazily through a thread-local), so the hot path never takes a lock or
//! contends on a shared cache line. Collection ([`Tracer::collect`])
//! snapshots every track into a [`TraceData`] that the exporters and the
//! summariser consume.
//!
//! Overhead discipline:
//! - **Disabled** mode never reads the clock and never allocates — every
//!   entry point returns after one enum match on `mode`.
//! - Spans are always recorded when enabled (they are rare and carry the
//!   timeline structure); instants and counter samples honour
//!   **Sampled** mode, which keeps 1-in-`period` of them.
//! - The VM interpreter loop itself is deliberately *not* instrumented:
//!   its counters already accumulate in `FastPathStats`, and the
//!   pipeline layer emits them as counter events after each run. That
//!   keeps the disabled-mode cost of the hottest loop at exactly zero.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, Weak};
use std::time::Instant;

use crate::ring::EventBuf;

/// How much a tracer records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceMode {
    /// Record nothing; every entry point is a single branch.
    Disabled,
    /// Record all spans, but only 1-in-`period` instants/counters.
    Sampled {
        /// Keep one of every `period` instant/counter events (min 1).
        period: u64,
    },
    /// Record everything.
    Full,
}

impl TraceMode {
    /// Parses `off`/`disabled`, `full`/`on`, or `sampled[:PERIOD]`.
    pub fn parse(text: &str) -> Result<TraceMode, String> {
        match text {
            "off" | "disabled" | "none" => Ok(TraceMode::Disabled),
            "full" | "on" => Ok(TraceMode::Full),
            "sampled" => Ok(TraceMode::Sampled { period: 64 }),
            _ => match text.strip_prefix("sampled:") {
                Some(p) => p
                    .parse::<u64>()
                    .ok()
                    .filter(|&p| p > 0)
                    .map(|period| TraceMode::Sampled { period })
                    .ok_or_else(|| format!("bad sample period `{p}`")),
                None => Err(format!(
                    "unknown trace mode `{text}` (expected off|sampled[:N]|full)"
                )),
            },
        }
    }
}

/// Event kind, mirroring the Chrome trace-event phases we export.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// A complete span with a duration (`ph: "X"`).
    Span,
    /// A point-in-time marker (`ph: "i"`).
    Instant,
    /// A counter sample (`ph: "C"`).
    Counter,
}

/// Up to four numeric key/value arguments, inline (no allocation).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Args {
    len: u8,
    pairs: [(&'static str, u64); 4],
}

impl Args {
    /// Builds from a slice; arguments beyond the fourth are ignored.
    pub fn from_slice(pairs: &[(&'static str, u64)]) -> Args {
        let mut args = Args::default();
        for &(k, v) in pairs.iter().take(4) {
            args.pairs[args.len as usize] = (k, v);
            args.len += 1;
        }
        args
    }

    /// The populated key/value pairs.
    pub fn entries(&self) -> &[(&'static str, u64)] {
        &self.pairs[..self.len as usize]
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Start time, nanoseconds since the tracer's epoch.
    pub ts_ns: u64,
    /// Duration in nanoseconds (spans only; 0 otherwise).
    pub dur_ns: u64,
    /// Event kind.
    pub ph: Phase,
    /// Category (e.g. `"stage"`, `"cache"`, `"vm"`).
    pub cat: &'static str,
    /// Static name (e.g. `"measure"`, `"profile_hit"`).
    pub name: &'static str,
    /// Optional dynamic suffix (e.g. a region or worker label).
    pub label: Option<Box<str>>,
    /// Numeric arguments.
    pub args: Args,
}

impl Event {
    /// `"name label"` when labelled, else `"name"`.
    pub fn full_name(&self) -> String {
        match &self.label {
            Some(label) => format!("{} {}", self.name, label),
            None => self.name.to_string(),
        }
    }
}

/// Per-thread event sink: a buffer plus identity for the exporter.
pub struct ThreadTrack {
    /// Stable per-tracer thread index (0 is the registering order).
    tid: u64,
    name: Mutex<String>,
    buf: EventBuf,
    /// Instant/counter admission counter for `Sampled` mode.
    sample: AtomicU64,
}

impl ThreadTrack {
    fn new(tid: u64, name: String, capacity: usize) -> ThreadTrack {
        ThreadTrack {
            tid,
            name: Mutex::new(name),
            buf: EventBuf::new(capacity),
            sample: AtomicU64::new(0),
        }
    }
}

/// Snapshot of one thread's events.
#[derive(Debug, Clone, PartialEq)]
pub struct TrackData {
    /// Per-tracer thread index.
    pub tid: u64,
    /// Thread display name.
    pub name: String,
    /// Events in emission order.
    pub events: Vec<Event>,
}

/// Snapshot of everything a tracer recorded.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceData {
    /// One entry per thread that emitted events, ordered by `tid`.
    pub tracks: Vec<TrackData>,
    /// Events lost to buffer overflow, across all tracks.
    pub dropped: u64,
    /// Per-thread ring capacity the tracer recorded with (0 when
    /// unknown, e.g. a trace file written before this field existed).
    pub ring_capacity: u64,
}

impl TraceData {
    /// Total recorded events across all tracks.
    pub fn event_count(&self) -> usize {
        self.tracks.iter().map(|t| t.events.len()).sum()
    }
}

/// Default per-thread event budget (events, not bytes).
pub const DEFAULT_TRACK_CAPACITY: usize = 16 * 1024;

static NEXT_TRACER_ID: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// (tracer id, track) pairs for this thread. Weak so a dropped
    /// tracer's tracks don't outlive it pinned in thread-locals.
    static TRACKS: RefCell<Vec<(u64, Weak<ThreadTrack>)>> = const { RefCell::new(Vec::new()) };
}

/// A span/event/counter recorder with per-thread lock-free buffers.
pub struct Tracer {
    id: u64,
    mode: TraceMode,
    capacity: usize,
    epoch: Instant,
    tracks: Mutex<Vec<Arc<ThreadTrack>>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("id", &self.id)
            .field("mode", &self.mode)
            .field("capacity", &self.capacity)
            .finish_non_exhaustive()
    }
}

impl Tracer {
    /// Creates a tracer with the default per-thread capacity.
    pub fn new(mode: TraceMode) -> Tracer {
        Tracer::with_capacity(mode, DEFAULT_TRACK_CAPACITY)
    }

    /// Creates a tracer with an explicit per-thread event budget.
    pub fn with_capacity(mode: TraceMode, capacity: usize) -> Tracer {
        Tracer {
            id: NEXT_TRACER_ID.fetch_add(1, Ordering::Relaxed),
            mode,
            capacity,
            epoch: Instant::now(),
            tracks: Mutex::new(Vec::new()),
        }
    }

    /// The recording mode.
    pub fn mode(&self) -> TraceMode {
        self.mode
    }

    /// True unless the mode is [`TraceMode::Disabled`].
    pub fn enabled(&self) -> bool {
        self.mode != TraceMode::Disabled
    }

    /// Nanoseconds since this tracer was created.
    pub fn now_ns(&self) -> u64 {
        // u64 nanoseconds covers ~584 years of process uptime.
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Names the *current thread's* track (shown as the Perfetto lane
    /// name). Registers the track if the thread has not emitted yet.
    pub fn set_thread_name(&self, name: &str) {
        if let Some(track) = self.track() {
            *track.name.lock().unwrap() = name.to_string();
        }
    }

    /// Starts a span; it records itself when the guard drops.
    pub fn span(self: &Arc<Self>, cat: &'static str, name: &'static str) -> Span {
        self.span_inner(cat, name, None)
    }

    /// Starts a span with a dynamic label (e.g. a region id).
    pub fn span_labeled(
        self: &Arc<Self>,
        cat: &'static str,
        name: &'static str,
        label: impl Into<String>,
    ) -> Span {
        if !self.enabled() {
            // Skip the `Into<String>` work entirely when disabled.
            return Span::disabled();
        }
        self.span_inner(cat, name, Some(label.into().into_boxed_str()))
    }

    fn span_inner(
        self: &Arc<Self>,
        cat: &'static str,
        name: &'static str,
        label: Option<Box<str>>,
    ) -> Span {
        if !self.enabled() {
            return Span::disabled();
        }
        Span {
            tracer: Some(Arc::clone(self)),
            start_ns: self.now_ns(),
            cat,
            name,
            label,
            args: Args::default(),
        }
    }

    /// Records a point-in-time event (subject to sampling).
    pub fn instant(&self, cat: &'static str, name: &'static str, args: &[(&'static str, u64)]) {
        if !self.admit_sampled() {
            return;
        }
        self.record(Event {
            ts_ns: self.now_ns(),
            dur_ns: 0,
            ph: Phase::Instant,
            cat,
            name,
            label: None,
            args: Args::from_slice(args),
        });
    }

    /// Records a counter sample (subject to sampling). Each named
    /// counter becomes a track in the Chrome export.
    pub fn counter(&self, cat: &'static str, name: &'static str, value: u64) {
        if !self.admit_sampled() {
            return;
        }
        self.record(Event {
            ts_ns: self.now_ns(),
            dur_ns: 0,
            ph: Phase::Counter,
            cat,
            name,
            label: None,
            args: Args::from_slice(&[("value", value)]),
        });
    }

    /// Sampling admission for instants/counters. Spans bypass this.
    fn admit_sampled(&self) -> bool {
        match self.mode {
            TraceMode::Disabled => false,
            TraceMode::Full => true,
            TraceMode::Sampled { period } => match self.track() {
                Some(track) => track.sample.fetch_add(1, Ordering::Relaxed) % period.max(1) == 0,
                None => false,
            },
        }
    }

    fn record(&self, event: Event) {
        if let Some(track) = self.track() {
            track.buf.push(event);
        }
    }

    /// This thread's track, registering it on first use.
    fn track(&self) -> Option<Arc<ThreadTrack>> {
        if !self.enabled() {
            return None;
        }
        TRACKS.with(|cell| {
            let mut tracks = cell.borrow_mut();
            if let Some((_, weak)) = tracks.iter().find(|(id, _)| *id == self.id) {
                if let Some(track) = weak.upgrade() {
                    return Some(track);
                }
            }
            // Drop stale registrations (dead tracers, or the find above
            // hitting a dead weak) before adding a fresh one.
            tracks.retain(|(id, weak)| *id != self.id && weak.strong_count() > 0);
            let track = {
                let mut owned = self.tracks.lock().unwrap();
                let tid = owned.len() as u64;
                let name = std::thread::current()
                    .name()
                    .map(str::to_string)
                    .unwrap_or_else(|| format!("thread-{tid}"));
                let track = Arc::new(ThreadTrack::new(tid, name, self.capacity));
                owned.push(Arc::clone(&track));
                track
            };
            tracks.push((self.id, Arc::downgrade(&track)));
            Some(track)
        })
    }

    /// Snapshots every track. Safe to call while other threads keep
    /// emitting; each track yields a consistent prefix.
    pub fn collect(&self) -> TraceData {
        let tracks = self.tracks.lock().unwrap();
        let mut dropped = 0;
        let data = tracks
            .iter()
            .map(|t| {
                dropped += t.buf.dropped();
                TrackData {
                    tid: t.tid,
                    name: t.name.lock().unwrap().clone(),
                    events: t.buf.snapshot(),
                }
            })
            .collect();
        TraceData {
            tracks: data,
            dropped,
            ring_capacity: self.capacity as u64,
        }
    }
}

/// RAII span guard: records a [`Phase::Span`] event when dropped.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct Span {
    tracer: Option<Arc<Tracer>>,
    start_ns: u64,
    cat: &'static str,
    name: &'static str,
    label: Option<Box<str>>,
    args: Args,
}

impl Span {
    /// An inert guard (used when tracing is disabled or absent).
    pub fn disabled() -> Span {
        Span {
            tracer: None,
            start_ns: 0,
            cat: "",
            name: "",
            label: None,
            args: Args::default(),
        }
    }

    /// Attaches a numeric argument (up to four are kept).
    pub fn arg(&mut self, key: &'static str, value: u64) {
        if self.tracer.is_some() && (self.args.len as usize) < self.args.pairs.len() {
            self.args.pairs[self.args.len as usize] = (key, value);
            self.args.len += 1;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(tracer) = self.tracer.take() {
            let end = tracer.now_ns();
            tracer.record(Event {
                ts_ns: self.start_ns,
                dur_ns: end.saturating_sub(self.start_ns),
                ph: Phase::Span,
                cat: self.cat,
                name: self.name,
                label: self.label.take(),
                args: self.args,
            });
        }
    }
}

/// Starts a span on an optional tracer — the common call-site shape in
/// instrumented code that must also run untraced.
pub fn maybe_span(tracer: Option<&Arc<Tracer>>, cat: &'static str, name: &'static str) -> Span {
    match tracer {
        Some(t) => t.span(cat, name),
        None => Span::disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Arc::new(Tracer::new(TraceMode::Disabled));
        {
            let mut span = tracer.span("stage", "measure");
            span.arg("n", 3);
        }
        tracer.instant("cache", "hit", &[]);
        tracer.counter("vm", "insns", 42);
        let data = tracer.collect();
        assert_eq!(data.event_count(), 0);
        assert!(data.tracks.is_empty());
        assert_eq!(data.dropped, 0);
    }

    #[test]
    fn spans_instants_and_counters_are_collected() {
        let tracer = Arc::new(Tracer::new(TraceMode::Full));
        {
            let mut span = tracer.span_labeled("stage", "measure", "region-3");
            span.arg("insns", 100);
            tracer.instant("cache", "profile_hit", &[("tier", 1)]);
        }
        tracer.counter("vm", "guest_insns", 12345);
        let data = tracer.collect();
        assert_eq!(data.tracks.len(), 1);
        let events = &data.tracks[0].events;
        assert_eq!(events.len(), 3);
        // The instant fires before the span guard drops.
        assert_eq!(events[0].ph, Phase::Instant);
        assert_eq!(events[0].args.entries(), &[("tier", 1)]);
        let span = events.iter().find(|e| e.ph == Phase::Span).unwrap();
        assert_eq!(span.full_name(), "measure region-3");
        assert_eq!(span.args.entries(), &[("insns", 100)]);
        let counter = events.iter().find(|e| e.ph == Phase::Counter).unwrap();
        assert_eq!(counter.args.entries(), &[("value", 12345)]);
    }

    #[test]
    fn span_timestamps_are_ordered() {
        let tracer = Arc::new(Tracer::new(TraceMode::Full));
        {
            let _outer = tracer.span("stage", "outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            let _inner = tracer.span("stage", "inner");
        }
        let data = tracer.collect();
        let events = &data.tracks[0].events;
        let outer = events.iter().find(|e| e.name == "outer").unwrap();
        let inner = events.iter().find(|e| e.name == "inner").unwrap();
        assert!(outer.ts_ns <= inner.ts_ns);
        assert!(outer.ts_ns + outer.dur_ns >= inner.ts_ns + inner.dur_ns);
        assert!(outer.dur_ns >= 2_000_000);
    }

    #[test]
    fn sampled_mode_keeps_one_in_period_but_all_spans() {
        let tracer = Arc::new(Tracer::new(TraceMode::Sampled { period: 10 }));
        for _ in 0..100 {
            tracer.instant("cache", "hit", &[]);
        }
        for _ in 0..5 {
            let _span = tracer.span("stage", "s");
        }
        let data = tracer.collect();
        let events = &data.tracks[0].events;
        let instants = events.iter().filter(|e| e.ph == Phase::Instant).count();
        let spans = events.iter().filter(|e| e.ph == Phase::Span).count();
        assert_eq!(instants, 10);
        assert_eq!(spans, 5);
    }

    #[test]
    fn each_thread_gets_its_own_track() {
        let tracer = Arc::new(Tracer::new(TraceMode::Full));
        tracer.set_thread_name("main");
        tracer.instant("t", "main_event", &[]);
        std::thread::scope(|scope| {
            for i in 0..3u64 {
                let tracer = Arc::clone(&tracer);
                scope.spawn(move || {
                    tracer.set_thread_name(&format!("worker-{i}"));
                    for _ in 0..=i {
                        tracer.instant("t", "worker_event", &[]);
                    }
                });
            }
        });
        let data = tracer.collect();
        assert_eq!(data.tracks.len(), 4);
        let main = data.tracks.iter().find(|t| t.name == "main").unwrap();
        assert_eq!(main.events.len(), 1);
        let mut worker_events: Vec<usize> = data
            .tracks
            .iter()
            .filter(|t| t.name.starts_with("worker-"))
            .map(|t| t.events.len())
            .collect();
        worker_events.sort_unstable();
        assert_eq!(worker_events, vec![1, 2, 3]);
        // tids are unique and dense.
        let mut tids: Vec<u64> = data.tracks.iter().map(|t| t.tid).collect();
        tids.sort_unstable();
        assert_eq!(tids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn two_tracers_on_one_thread_do_not_mix() {
        let a = Arc::new(Tracer::new(TraceMode::Full));
        let b = Arc::new(Tracer::new(TraceMode::Full));
        a.instant("t", "for_a", &[]);
        b.instant("t", "for_b", &[]);
        a.instant("t", "for_a", &[]);
        assert_eq!(a.collect().event_count(), 2);
        assert_eq!(b.collect().event_count(), 1);
    }

    #[test]
    fn dropped_tracer_track_is_reclaimed_on_next_use() {
        // Many short-lived tracers on one thread must not grow the
        // thread-local registry without bound.
        for _ in 0..64 {
            let t = Arc::new(Tracer::new(TraceMode::Full));
            t.instant("t", "e", &[]);
            assert_eq!(t.collect().event_count(), 1);
        }
        TRACKS.with(|cell| {
            let live = cell
                .borrow()
                .iter()
                .filter(|(_, w)| w.strong_count() > 0)
                .count();
            assert_eq!(live, 0);
        });
    }

    #[test]
    fn overflow_is_counted_in_collect() {
        let tracer = Arc::new(Tracer::with_capacity(TraceMode::Full, 4));
        for _ in 0..10 {
            tracer.instant("t", "e", &[]);
        }
        let data = tracer.collect();
        assert_eq!(data.event_count(), 4);
        assert_eq!(data.dropped, 6);
    }

    #[test]
    fn mode_parsing() {
        assert_eq!(TraceMode::parse("off").unwrap(), TraceMode::Disabled);
        assert_eq!(TraceMode::parse("full").unwrap(), TraceMode::Full);
        assert_eq!(
            TraceMode::parse("sampled").unwrap(),
            TraceMode::Sampled { period: 64 }
        );
        assert_eq!(
            TraceMode::parse("sampled:7").unwrap(),
            TraceMode::Sampled { period: 7 }
        );
        assert!(TraceMode::parse("sampled:0").is_err());
        assert!(TraceMode::parse("verbose").is_err());
    }
}
