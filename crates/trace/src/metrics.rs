//! Typed metrics registry: counters, gauges, and log2-bucket histograms.
//!
//! Handles are `Arc`-shared atomics, so recording is lock-free; the
//! registry lock is only taken at registration and snapshot time. All
//! metrics of a kind share one namespace, and re-registering a name
//! returns the existing handle — workers can each ask for
//! `"store.put_bytes"` and feed the same histogram.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::json::Json;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds `n` (saturating).
    pub fn add(&self, n: u64) {
        // fetch_add wraps on overflow; a saturating CAS loop would cost
        // more than the failure mode is worth, but cap the common case.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Increments by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Raises the counter to `total` if it is below it (monotone `max`).
    /// For mirroring an externally-accumulated total (e.g. store puts
    /// rolled up from per-tenant caches) without double counting.
    pub fn observe_total(&self, total: u64) {
        self.0.fetch_max(total, Ordering::Relaxed);
    }
}

/// A signed instantaneous value.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the value by `delta`.
    pub fn adjust(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Number of histogram buckets: one for zero plus one per power of two.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// A histogram with fixed log2 buckets.
///
/// Bucket 0 counts zero-valued observations; bucket `i` (1..=64) counts
/// values in `[2^(i-1), 2^i)`. Fixed buckets mean snapshots merge by
/// element-wise addition — no rebinning, and merging is associative.
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0u64; HISTOGRAM_BUCKETS].map(AtomicU64::new),
            sum: AtomicU64::new(0),
        }
    }
}

impl Histogram {
    /// Bucket index for a value: 0 for 0, else `64 - leading_zeros`.
    pub fn bucket_index(value: u64) -> usize {
        (u64::BITS - value.leading_zeros()) as usize
    }

    /// Lower bound of bucket `i` (inclusive).
    pub fn bucket_floor(i: usize) -> u64 {
        if i == 0 {
            0
        } else {
            1u64 << (i - 1)
        }
    }

    /// Records one observation.
    pub fn record(&self, value: u64) {
        self.buckets[Self::bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
    }

    /// Copies out the bucket counts and running sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }

    /// Upper bound of bucket `i` (inclusive): the largest value the
    /// bucket can hold. Bucket 0 holds only zero; bucket `i` holds
    /// `[2^(i-1), 2^i - 1]`; bucket 64 tops out at `u64::MAX`.
    pub fn bucket_ceil(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            _ => (1u64 << i) - 1,
        }
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Counts per log2 bucket.
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total observation count.
    pub fn count(&self) -> u64 {
        self.buckets.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Mean observed value (0 when empty).
    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum as f64 / n as f64
        }
    }

    /// Nearest-rank quantile estimate for `q` in `[0, 100]`.
    ///
    /// Log2 buckets lose the exact observations, so the estimate is the
    /// geometric midpoint of the bucket holding the rank — always within
    /// that bucket's `[floor, ceil]` bounds. Returns 0 when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        let n = self.count();
        if n == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 100.0);
        // Nearest rank: the k-th smallest observation, 1-based.
        let rank = ((q / 100.0 * n as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(c);
            if seen >= rank {
                let floor = Histogram::bucket_floor(i);
                // floor + floor/2 stays below 2*floor, so the estimate
                // never escapes the bucket.
                return floor + floor / 2;
            }
        }
        Histogram::bucket_ceil(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Default)]
struct Inner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// A registry handing out shared metric handles by name.
///
/// Names are owned strings so dynamically-shaped families
/// (`serve.shard3.queue_depth`) register per instance. Components that
/// want one ambient registry for the whole process use
/// [`MetricsRegistry::global`]; components that need hermetic counts
/// (a daemon under test, concurrent daemons in one binary) own their
/// own instance instead.
#[derive(Default)]
pub struct MetricsRegistry {
    inner: Mutex<Inner>,
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let inner = self.inner.lock().unwrap();
        f.debug_struct("MetricsRegistry")
            .field("counters", &inner.counters.len())
            .field("gauges", &inner.gauges.len())
            .field("histograms", &inner.histograms.len())
            .finish()
    }
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// The process-global registry, created on first use. Long-lived
    /// services that want "the" registry share this one; anything that
    /// asserts on exact counts should own a private instance.
    pub fn global() -> &'static MetricsRegistry {
        static GLOBAL: OnceLock<MetricsRegistry> = OnceLock::new();
        GLOBAL.get_or_init(MetricsRegistry::new)
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock().unwrap();
        match inner.counters.get(name) {
            Some(c) => Arc::clone(c),
            None => Arc::clone(inner.counters.entry(name.to_string()).or_default()),
        }
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock().unwrap();
        match inner.gauges.get(name) {
            Some(g) => Arc::clone(g),
            None => Arc::clone(inner.gauges.entry(name.to_string()).or_default()),
        }
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock().unwrap();
        match inner.histograms.get(name) {
            Some(h) => Arc::clone(h),
            None => Arc::clone(inner.histograms.entry(name.to_string()).or_default()),
        }
    }

    /// Snapshots every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Serialises to JSON. Histograms keep only non-empty buckets, keyed
    /// by their floor value, so the document stays compact.
    pub fn to_json(&self) -> Json {
        let counters = Json::Obj(
            self.counters
                .iter()
                .map(|(k, &v)| (k.clone(), Json::U64(v)))
                .collect(),
        );
        let gauges = Json::Obj(
            self.gauges
                .iter()
                .map(|(k, &v)| {
                    let value = u64::try_from(v).map(Json::U64).unwrap_or(Json::I64(v));
                    (k.clone(), value)
                })
                .collect(),
        );
        let histograms = Json::Obj(
            self.histograms
                .iter()
                .map(|(k, h)| {
                    let buckets = Json::Obj(
                        h.buckets
                            .iter()
                            .enumerate()
                            .filter(|(_, &n)| n > 0)
                            .map(|(i, &n)| (Histogram::bucket_floor(i).to_string(), Json::U64(n)))
                            .collect(),
                    );
                    let fields = vec![
                        ("count".to_string(), Json::U64(h.count())),
                        ("sum".to_string(), Json::U64(h.sum)),
                        ("buckets".to_string(), buckets),
                    ];
                    (k.clone(), Json::Obj(fields))
                })
                .collect(),
        );
        Json::Obj(vec![
            ("counters".to_string(), counters),
            ("gauges".to_string(), gauges),
            ("histograms".to_string(), histograms),
        ])
    }

    /// Parses the [`MetricsSnapshot::to_json`] form back. Missing
    /// sections decode as empty; wrong types are errors.
    ///
    /// # Errors
    /// Describes the first structural problem found.
    pub fn from_json(doc: &Json) -> Result<MetricsSnapshot, String> {
        let section = |name: &str| -> Result<Vec<(String, Json)>, String> {
            match doc.get(name) {
                None => Ok(Vec::new()),
                Some(j) => Ok(j
                    .as_obj()
                    .ok_or_else(|| format!("`{name}` is not an object"))?
                    .to_vec()),
            }
        };
        let mut snap = MetricsSnapshot::default();
        for (k, v) in section("counters")? {
            let v = v
                .as_u64()
                .ok_or_else(|| format!("counter `{k}`: not a u64"))?;
            snap.counters.insert(k, v);
        }
        for (k, v) in section("gauges")? {
            let v = match v {
                Json::U64(n) => i64::try_from(n).ok(),
                Json::I64(n) => Some(n),
                _ => None,
            }
            .ok_or_else(|| format!("gauge `{k}`: not an i64"))?;
            snap.gauges.insert(k, v);
        }
        for (k, v) in section("histograms")? {
            let sum = v
                .get("sum")
                .and_then(Json::as_u64)
                .ok_or_else(|| format!("histogram `{k}`: missing u64 `sum`"))?;
            let mut buckets = [0u64; HISTOGRAM_BUCKETS];
            for (floor, n) in v
                .get("buckets")
                .and_then(Json::as_obj)
                .ok_or_else(|| format!("histogram `{k}`: missing `buckets` object"))?
            {
                let floor: u64 = floor
                    .parse()
                    .map_err(|_| format!("histogram `{k}`: bucket key `{floor}` is not a u64"))?;
                let i = Histogram::bucket_index(floor);
                if Histogram::bucket_floor(i) != floor {
                    return Err(format!("histogram `{k}`: `{floor}` is not a bucket floor"));
                }
                let n = n
                    .as_u64()
                    .ok_or_else(|| format!("histogram `{k}`: bucket count is not a u64"))?;
                buckets[i] = n;
            }
            snap.histograms
                .insert(k, HistogramSnapshot { buckets, sum });
        }
        Ok(snap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_are_shared_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("hits");
        let b = reg.counter("hits");
        a.inc();
        b.add(2);
        assert_eq!(reg.counter("hits").get(), 3);

        let g = reg.gauge("depth");
        g.set(5);
        reg.gauge("depth").adjust(-7);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_bucket_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(u64::MAX), 64);
        assert_eq!(Histogram::bucket_floor(0), 0);
        assert_eq!(Histogram::bucket_floor(1), 1);
        assert_eq!(Histogram::bucket_floor(2), 2);
        assert_eq!(Histogram::bucket_floor(3), 4);
        assert_eq!(Histogram::bucket_floor(64), 1u64 << 63);
        // Every value lands in the bucket whose floor bounds it below.
        for v in [0u64, 1, 7, 1024, 1 << 40, u64::MAX] {
            let i = Histogram::bucket_index(v);
            assert!(Histogram::bucket_floor(i) <= v.max(1) || v == 0);
            if i < 64 {
                assert!(v < Histogram::bucket_floor(i + 1));
            }
        }
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("latency_ns");
        for v in [0, 1, 3, 3, 1000] {
            h.record(v);
        }
        let snap = h.snapshot();
        assert_eq!(snap.count(), 5);
        assert_eq!(snap.sum, 1007);
        assert_eq!(snap.buckets[0], 1); // the 0
        assert_eq!(snap.buckets[1], 1); // the 1
        assert_eq!(snap.buckets[2], 2); // the 3s
        assert_eq!(snap.buckets[10], 1); // 1000 in [512, 1024)
        assert!((snap.mean() - 201.4).abs() < 1e-9);
    }

    #[test]
    fn snapshot_serialises_compactly() {
        let reg = MetricsRegistry::new();
        reg.counter("hits").add(7);
        reg.gauge("live").set(-3);
        reg.histogram("bytes").record(5);
        let json = reg.snapshot().to_json();
        assert_eq!(
            json.get("counters").unwrap().get("hits").unwrap().as_u64(),
            Some(7)
        );
        assert_eq!(
            json.get("gauges").unwrap().get("live").unwrap(),
            &Json::I64(-3)
        );
        let h = json.get("histograms").unwrap().get("bytes").unwrap();
        assert_eq!(h.get("count").unwrap().as_u64(), Some(1));
        assert_eq!(h.get("sum").unwrap().as_u64(), Some(5));
        // 5 lands in [4, 8): keyed by floor 4; empty buckets are absent.
        let buckets = h.get("buckets").unwrap().as_obj().unwrap();
        assert_eq!(buckets.len(), 1);
        assert_eq!(buckets[0].0, "4");
        assert_eq!(buckets[0].1.as_u64(), Some(1));
        // Round-trips through the parser.
        assert_eq!(Json::parse(&json.render()).unwrap(), json);
    }

    #[test]
    fn empty_histogram_mean_is_zero() {
        let h = Histogram::default();
        assert_eq!(h.snapshot().mean(), 0.0);
        assert_eq!(h.snapshot().count(), 0);
        assert_eq!(h.snapshot().quantile(50.0), 0);
    }

    #[test]
    fn dynamic_names_register_distinct_handles() {
        let reg = MetricsRegistry::new();
        for shard in 0..4 {
            reg.gauge(&format!("serve.shard{shard}.queue_depth"))
                .set(shard);
        }
        let snap = reg.snapshot();
        assert_eq!(snap.gauges.len(), 4);
        assert_eq!(snap.gauges["serve.shard3.queue_depth"], 3);
    }

    #[test]
    fn observe_total_is_monotone() {
        let c = Counter::default();
        c.observe_total(10);
        c.observe_total(7);
        assert_eq!(c.get(), 10);
        c.observe_total(12);
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn global_registry_is_shared() {
        MetricsRegistry::global().counter("test.global").inc();
        MetricsRegistry::global().counter("test.global").inc();
        assert!(MetricsRegistry::global().counter("test.global").get() >= 2);
    }

    #[test]
    fn quantile_estimates_stay_inside_their_bucket() {
        let h = Histogram::default();
        for v in [1u64, 3, 3, 900, 1000, 1 << 20] {
            h.record(v);
        }
        let snap = h.snapshot();
        for q in [0.0, 10.0, 50.0, 90.0, 95.0, 99.0, 100.0] {
            let est = snap.quantile(q);
            let i = Histogram::bucket_index(est);
            assert!(snap.buckets[i] > 0, "q{q} → {est} in an empty bucket");
            assert!(Histogram::bucket_floor(i) <= est && est <= Histogram::bucket_ceil(i));
        }
        // The median of {1,3,3,900,1000,2^20} sits in the 3s bucket [2,3].
        assert!(snap.quantile(50.0) <= 3);
        // The max lands in 2^20's bucket.
        assert!(snap.quantile(100.0) >= 1 << 20);
    }

    #[test]
    fn snapshot_json_roundtrips() {
        let reg = MetricsRegistry::new();
        reg.counter("hits").add(7);
        reg.gauge("depth").set(-3);
        reg.gauge("live").set(9);
        let h = reg.histogram("lat");
        for v in [0, 1, 5, 5000, u64::MAX] {
            h.record(v);
        }
        let snap = reg.snapshot();
        let back = MetricsSnapshot::from_json(&snap.to_json()).unwrap();
        assert_eq!(back, snap);
        // Empty documents decode as empty snapshots.
        let empty = MetricsSnapshot::from_json(&Json::Obj(vec![])).unwrap();
        assert_eq!(empty, MetricsSnapshot::default());
        // Bad bucket keys are typed errors.
        let bad = Json::parse(r#"{"histograms":{"h":{"sum":1,"buckets":{"3":1}}}}"#).unwrap();
        assert!(
            MetricsSnapshot::from_json(&bad).is_err(),
            "3 is not a floor"
        );
    }
}
