//! Trace aggregation: fold a timeline back into per-stage / per-worker
//! totals.
//!
//! The summary can be built directly from an in-memory [`TraceData`] or
//! from a Chrome trace-event document previously written by
//! [`chrome_trace`] — `elfie trace summarize out.json` uses the latter
//! so a trace file is self-contained. Spans aggregate under their base
//! name (the static part before any dynamic label), per-thread busy
//! time is the union of span intervals (so nested spans are not double
//! counted), and counters report their last sample.
//!
//! [`chrome_trace`]: crate::chrome::chrome_trace

use std::collections::BTreeMap;
use std::fmt;

use crate::json::Json;
use crate::tracer::{Phase, TraceData};

/// Aggregate statistics for one span name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanAgg {
    /// Number of completed spans.
    pub count: u64,
    /// Sum of durations.
    pub total_ns: u64,
    /// Shortest span.
    pub min_ns: u64,
    /// Longest span.
    pub max_ns: u64,
}

impl SpanAgg {
    fn observe(&mut self, dur_ns: u64) {
        self.count = self.count.saturating_add(1);
        self.total_ns = self.total_ns.saturating_add(dur_ns);
        self.min_ns = self.min_ns.min(dur_ns);
        self.max_ns = self.max_ns.max(dur_ns);
    }

    /// Mean duration (0 when empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }
}

/// Per-thread aggregate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThreadAgg {
    /// Thread display name.
    pub name: String,
    /// Events on this thread (all phases).
    pub events: u64,
    /// Completed spans on this thread.
    pub spans: u64,
    /// Union of span intervals — time the thread was inside at least
    /// one span, with nesting counted once.
    pub busy_ns: u64,
}

/// A per-stage / per-worker rollup of a trace.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceSummary {
    /// Threads in tid order.
    pub threads: Vec<ThreadAgg>,
    /// Span aggregates keyed by base name.
    pub spans: BTreeMap<String, SpanAgg>,
    /// Instant-event counts keyed by base name.
    pub instants: BTreeMap<String, u64>,
    /// Last sample of each counter track.
    pub counters: BTreeMap<String, u64>,
    /// Events lost to ring-buffer overflow.
    pub dropped: u64,
    /// Per-thread ring capacity the trace was recorded with (0 when the
    /// source predates this field).
    pub ring_capacity: u64,
}

/// Sums the lengths of the union of `[start, end)` intervals.
fn interval_union_ns(mut intervals: Vec<(u64, u64)>) -> u64 {
    intervals.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (start, end) in intervals {
        match cur {
            Some((s, e)) if start <= e => cur = Some((s, e.max(end))),
            Some((s, e)) => {
                total = total.saturating_add(e - s);
                cur = Some((start, end));
            }
            None => cur = Some((start, end)),
        }
    }
    if let Some((s, e)) = cur {
        total = total.saturating_add(e - s);
    }
    total
}

/// The static part of an exported event name (before the ` label`).
fn base_name(full: &str) -> &str {
    full.split(' ').next().unwrap_or(full)
}

impl TraceSummary {
    /// Builds a summary from a collected trace.
    pub fn from_trace(data: &TraceData) -> TraceSummary {
        let mut summary = TraceSummary {
            dropped: data.dropped,
            ring_capacity: data.ring_capacity,
            ..TraceSummary::default()
        };
        for track in &data.tracks {
            let mut agg = ThreadAgg {
                name: track.name.clone(),
                events: track.events.len() as u64,
                spans: 0,
                busy_ns: 0,
            };
            let mut intervals = Vec::new();
            for event in &track.events {
                match event.ph {
                    Phase::Span => {
                        agg.spans += 1;
                        intervals.push((event.ts_ns, event.ts_ns.saturating_add(event.dur_ns)));
                        summary.observe_span(event.name, event.dur_ns);
                    }
                    Phase::Instant => {
                        *summary.instants.entry(event.name.to_string()).or_default() += 1;
                    }
                    Phase::Counter => {
                        if let Some(&(_, value)) = event.args.entries().first() {
                            // Events are in emission order; keep the last.
                            summary.counters.insert(event.name.to_string(), value);
                        }
                    }
                }
            }
            agg.busy_ns = interval_union_ns(intervals);
            summary.threads.push(agg);
        }
        summary
    }

    /// Builds a summary from a parsed Chrome trace-event document.
    ///
    /// # Errors
    /// Returns a description of the first structural problem.
    pub fn from_chrome_json(doc: &Json) -> Result<TraceSummary, String> {
        let events = doc
            .field("traceEvents")?
            .as_arr()
            .ok_or("`traceEvents` is not an array")?;
        let mut summary = TraceSummary {
            dropped: doc
                .get("otherData")
                .and_then(|o| o.get("dropped_events"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            ring_capacity: doc
                .get("otherData")
                .and_then(|o| o.get("ring_capacity"))
                .and_then(Json::as_u64)
                .unwrap_or(0),
            ..TraceSummary::default()
        };
        // tid -> (name, events, spans, intervals, last counter ts per name)
        struct Thread {
            name: String,
            events: u64,
            spans: u64,
            intervals: Vec<(u64, u64)>,
        }
        let mut threads: BTreeMap<u64, Thread> = BTreeMap::new();
        let mut counter_ts: BTreeMap<String, f64> = BTreeMap::new();
        let ns = |v: &Json| -> u64 { (v.as_f64().unwrap_or(0.0) * 1000.0).round() as u64 };
        for (i, event) in events.iter().enumerate() {
            let err = |e: String| format!("event {i}: {e}");
            let ph = event
                .field("ph")
                .map_err(&err)?
                .as_str()
                .ok_or_else(|| err("`ph` is not a string".into()))?;
            let tid = event
                .field("tid")
                .map_err(&err)?
                .as_u64()
                .ok_or_else(|| err("`tid` is not an integer".into()))?;
            let name = event
                .field("name")
                .map_err(&err)?
                .as_str()
                .ok_or_else(|| err("`name` is not a string".into()))?;
            let thread = threads.entry(tid).or_insert_with(|| Thread {
                name: format!("thread-{tid}"),
                events: 0,
                spans: 0,
                intervals: Vec::new(),
            });
            match ph {
                "M" => {
                    if name == "thread_name" {
                        if let Some(n) = event
                            .get("args")
                            .and_then(|a| a.get("name"))
                            .and_then(Json::as_str)
                        {
                            thread.name = n.to_string();
                        }
                    }
                }
                "X" => {
                    let ts = ns(event.field("ts").map_err(&err)?);
                    let dur = ns(event.field("dur").map_err(&err)?);
                    thread.events += 1;
                    thread.spans += 1;
                    thread.intervals.push((ts, ts.saturating_add(dur)));
                    summary.observe_span(base_name(name), dur);
                }
                "i" => {
                    thread.events += 1;
                    *summary
                        .instants
                        .entry(base_name(name).to_string())
                        .or_default() += 1;
                }
                "C" => {
                    thread.events += 1;
                    let ts = event.get("ts").map(ns).unwrap_or(0) as f64;
                    let value = event
                        .get("args")
                        .and_then(|a| a.as_obj())
                        .and_then(|fields| fields.first())
                        .and_then(|(_, v)| v.as_u64())
                        .unwrap_or(0);
                    // Counter events may interleave across threads; keep
                    // the one with the latest timestamp.
                    let key = base_name(name).to_string();
                    if counter_ts.get(&key).map_or(true, |&prev| ts >= prev) {
                        counter_ts.insert(key.clone(), ts);
                        summary.counters.insert(key, value);
                    }
                }
                other => return Err(err(format!("unknown phase `{other}`"))),
            }
        }
        for (_, thread) in threads {
            summary.threads.push(ThreadAgg {
                name: thread.name,
                events: thread.events,
                spans: thread.spans,
                busy_ns: interval_union_ns(thread.intervals),
            });
        }
        Ok(summary)
    }

    fn observe_span(&mut self, name: &str, dur_ns: u64) {
        self.spans
            .entry(name.to_string())
            .or_insert(SpanAgg {
                count: 0,
                total_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            })
            .observe(dur_ns);
    }

    /// Total events across all threads.
    pub fn event_count(&self) -> u64 {
        self.threads.iter().map(|t| t.events).sum()
    }
}

/// Durations of every completed span whose base name is `base`, across
/// all threads, sorted ascending — the input shape [`percentile_ns`]
/// expects. Fleet-style harnesses use this to turn per-job spans into
/// latency distributions.
pub fn span_durations_ns(data: &TraceData, base: &str) -> Vec<u64> {
    let mut durations: Vec<u64> = data
        .tracks
        .iter()
        .flat_map(|track| track.events.iter())
        .filter(|event| event.ph == Phase::Span && base_name(event.name) == base)
        .map(|event| event.dur_ns)
        .collect();
    durations.sort_unstable();
    durations
}

/// One span matching a request-id filter — a link in a request's causal
/// chain across client and daemon traces.
#[derive(Debug, Clone, PartialEq)]
pub struct RequestSpan {
    /// Start, microseconds since the source tracer's epoch.
    pub ts_us: f64,
    /// Duration in microseconds.
    pub dur_us: f64,
    /// Display name of the thread the span ran on.
    pub thread: String,
    /// Span name (including any dynamic label).
    pub name: String,
    /// Span category.
    pub cat: String,
}

/// Extracts every span in a parsed Chrome trace document whose
/// `args.request_id` equals `rid`, ordered by start time — the engine
/// behind `elfie trace summarize --request ID`. Each trace file has its
/// own epoch, so chains from different files (client vs daemon) order
/// within a file, not across files.
///
/// # Errors
/// Returns a description of the first structural problem.
pub fn request_chain(doc: &Json, rid: u64) -> Result<Vec<RequestSpan>, String> {
    let events = doc
        .field("traceEvents")?
        .as_arr()
        .ok_or("`traceEvents` is not an array")?;
    // First pass: thread names from the "M" metadata lane.
    let mut names: BTreeMap<u64, String> = BTreeMap::new();
    for event in events {
        if event.get("ph").and_then(Json::as_str) == Some("M")
            && event.get("name").and_then(Json::as_str) == Some("thread_name")
        {
            if let (Some(tid), Some(name)) = (
                event.get("tid").and_then(Json::as_u64),
                event
                    .get("args")
                    .and_then(|a| a.get("name"))
                    .and_then(Json::as_str),
            ) {
                names.insert(tid, name.to_string());
            }
        }
    }
    let mut chain = Vec::new();
    for (i, event) in events.iter().enumerate() {
        if event.get("ph").and_then(Json::as_str) != Some("X") {
            continue;
        }
        let matches = event
            .get("args")
            .and_then(|a| a.get("request_id"))
            .and_then(Json::as_u64)
            == Some(rid);
        if !matches {
            continue;
        }
        let err = |e: String| format!("event {i}: {e}");
        let tid = event
            .field("tid")
            .map_err(&err)?
            .as_u64()
            .ok_or_else(|| err("`tid` is not an integer".into()))?;
        chain.push(RequestSpan {
            ts_us: event
                .field("ts")
                .map_err(&err)?
                .as_f64()
                .ok_or_else(|| err("`ts` is not a number".into()))?,
            dur_us: event
                .field("dur")
                .map_err(&err)?
                .as_f64()
                .ok_or_else(|| err("`dur` is not a number".into()))?,
            thread: names
                .get(&tid)
                .cloned()
                .unwrap_or_else(|| format!("thread-{tid}")),
            name: event
                .field("name")
                .map_err(&err)?
                .as_str()
                .ok_or_else(|| err("`name` is not a string".into()))?
                .to_string(),
            cat: event
                .get("cat")
                .and_then(Json::as_str)
                .unwrap_or("")
                .to_string(),
        });
    }
    chain.sort_by(|a, b| a.ts_us.total_cmp(&b.ts_us));
    Ok(chain)
}

/// Nearest-rank percentile (`p` in `[0, 100]`) over an ascending-sorted
/// slice; 0 when empty. `percentile_ns(&d, 50.0)` is the median,
/// `percentile_ns(&d, 100.0)` the maximum.
pub fn percentile_ns(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p.clamp(0.0, 100.0) / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.saturating_sub(1).min(sorted.len() - 1)]
}

fn secs(ns: u64) -> f64 {
    ns as f64 / 1e9
}

impl fmt::Display for TraceSummary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "trace: {} events on {} thread{}, {} dropped",
            self.event_count(),
            self.threads.len(),
            if self.threads.len() == 1 { "" } else { "s" },
            self.dropped
        )?;
        if self.dropped > 0 {
            writeln!(
                f,
                "  warning: {} event{} dropped (per-thread rings overflowed; raise the ring capacity)",
                self.dropped,
                if self.dropped == 1 { "" } else { "s" }
            )?;
        }
        for t in &self.threads {
            write!(
                f,
                "  thread {}: {} events, {} spans, {:.3}s busy",
                t.name,
                t.events,
                t.spans,
                secs(t.busy_ns)
            )?;
            if self.ring_capacity > 0 {
                writeln!(
                    f,
                    ", ring {}/{} ({:.1}% full)",
                    t.events,
                    self.ring_capacity,
                    t.events as f64 * 100.0 / self.ring_capacity as f64
                )?;
            } else {
                writeln!(f)?;
            }
        }
        for (name, agg) in &self.spans {
            writeln!(
                f,
                "  span {}: {} calls, {:.3}s total (min {:.3}s, mean {:.3}s, max {:.3}s)",
                name,
                agg.count,
                secs(agg.total_ns),
                secs(agg.min_ns),
                secs(agg.mean_ns()),
                secs(agg.max_ns)
            )?;
        }
        for (name, count) in &self.instants {
            writeln!(f, "  event {name}: {count}")?;
        }
        for (name, value) in &self.counters {
            writeln!(f, "  counter {name}: {value}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chrome::chrome_trace;
    use crate::tracer::{TraceMode, Tracer};
    use std::sync::Arc;

    #[test]
    fn interval_union_merges_overlaps() {
        assert_eq!(interval_union_ns(vec![]), 0);
        assert_eq!(interval_union_ns(vec![(0, 10)]), 10);
        assert_eq!(interval_union_ns(vec![(0, 10), (5, 15)]), 15);
        assert_eq!(interval_union_ns(vec![(5, 15), (0, 10)]), 15);
        assert_eq!(interval_union_ns(vec![(0, 10), (20, 30)]), 20);
        // Nested spans count once.
        assert_eq!(interval_union_ns(vec![(0, 100), (10, 20), (30, 40)]), 100);
    }

    fn build_trace() -> TraceData {
        let tracer = Arc::new(Tracer::new(TraceMode::Full));
        tracer.set_thread_name("main");
        {
            let _outer = tracer.span("stage", "measure");
            tracer.instant("cache", "profile_hit", &[]);
            tracer.instant("cache", "profile_hit", &[]);
        }
        tracer.counter("vm", "guest_insns", 10);
        tracer.counter("vm", "guest_insns", 99);
        std::thread::scope(|scope| {
            let tracer = Arc::clone(&tracer);
            scope.spawn(move || {
                tracer.set_thread_name("worker-0");
                let _span = tracer.span_labeled("task", "cluster", "c1");
            });
        });
        tracer.collect()
    }

    #[test]
    fn summary_from_trace_aggregates() {
        let summary = TraceSummary::from_trace(&build_trace());
        assert_eq!(summary.threads.len(), 2);
        assert_eq!(summary.threads[0].name, "main");
        assert_eq!(summary.threads[1].name, "worker-0");
        assert_eq!(summary.spans["measure"].count, 1);
        assert_eq!(summary.spans["cluster"].count, 1);
        assert_eq!(summary.instants["profile_hit"], 2);
        assert_eq!(summary.counters["guest_insns"], 99);
        assert_eq!(summary.dropped, 0);
        assert!(summary.threads[0].busy_ns >= summary.spans["measure"].total_ns);
    }

    #[test]
    fn chrome_roundtrip_matches_direct_summary() {
        let data = build_trace();
        let direct = TraceSummary::from_trace(&data);
        let doc = chrome_trace(&data);
        let parsed = Json::parse(&doc.render()).unwrap();
        let via_json = TraceSummary::from_chrome_json(&parsed).unwrap();
        assert_eq!(via_json.event_count(), direct.event_count());
        assert_eq!(via_json.instants, direct.instants);
        assert_eq!(via_json.counters, direct.counters);
        assert_eq!(
            via_json.spans.keys().collect::<Vec<_>>(),
            direct.spans.keys().collect::<Vec<_>>()
        );
        for (name, agg) in &direct.spans {
            assert_eq!(via_json.spans[name].count, agg.count);
        }
        let names: Vec<&str> = via_json.threads.iter().map(|t| t.name.as_str()).collect();
        assert_eq!(names, vec!["main", "worker-0"]);
    }

    #[test]
    fn display_renders_every_section() {
        let text = TraceSummary::from_trace(&build_trace()).to_string();
        assert!(text.contains("trace: "), "{text}");
        assert!(text.contains("thread main:"), "{text}");
        assert!(text.contains("thread worker-0:"), "{text}");
        assert!(text.contains("span measure: 1 calls"), "{text}");
        assert!(text.contains("event profile_hit: 2"), "{text}");
        assert!(text.contains("counter guest_insns: 99"), "{text}");
    }

    #[test]
    fn span_durations_collect_across_threads_sorted() {
        let tracer = Arc::new(Tracer::new(TraceMode::Full));
        {
            let _a = tracer.span("fleet", "job");
        }
        std::thread::scope(|scope| {
            let tracer = Arc::clone(&tracer);
            scope.spawn(move || {
                let _b = tracer.span_labeled("fleet", "job", "w1");
                let _other = tracer.span("fleet", "seed");
            });
        });
        let data = tracer.collect();
        let durations = span_durations_ns(&data, "job");
        assert_eq!(durations.len(), 2, "one per thread, label stripped");
        assert!(durations.windows(2).all(|w| w[0] <= w[1]), "sorted");
        assert_eq!(span_durations_ns(&data, "seed").len(), 1);
        assert!(span_durations_ns(&data, "missing").is_empty());
    }

    #[test]
    fn percentile_is_nearest_rank() {
        assert_eq!(percentile_ns(&[], 50.0), 0);
        let d = [10, 20, 30, 40, 50, 60, 70, 80, 90, 100];
        assert_eq!(percentile_ns(&d, 0.0), 10);
        assert_eq!(percentile_ns(&d, 50.0), 50);
        assert_eq!(percentile_ns(&d, 95.0), 100);
        assert_eq!(percentile_ns(&d, 100.0), 100);
        assert_eq!(percentile_ns(&[7], 50.0), 7);
    }

    #[test]
    fn display_shows_ring_occupancy_and_drop_warning() {
        let tracer = Arc::new(Tracer::with_capacity(TraceMode::Full, 4));
        tracer.set_thread_name("main");
        for _ in 0..10 {
            tracer.instant("t", "e", &[]);
        }
        let text = TraceSummary::from_trace(&tracer.collect()).to_string();
        assert!(text.contains("6 dropped"), "{text}");
        assert!(text.contains("warning: 6 events dropped"), "{text}");
        assert!(text.contains("ring 4/4 (100.0% full)"), "{text}");
        // Through a Chrome file the figures survive otherData.
        let doc = chrome_trace(&tracer.collect());
        let via = TraceSummary::from_chrome_json(&Json::parse(&doc.render()).unwrap()).unwrap();
        assert_eq!(via.dropped, 6);
        assert_eq!(via.ring_capacity, 4);
        assert!(via.to_string().contains("ring 4/4"), "{via}");
        // Pre-ring_capacity files omit the occupancy column.
        let legacy = TraceSummary {
            ring_capacity: 0,
            ..via
        };
        assert!(!legacy.to_string().contains("ring 4/4"), "{legacy}");
    }

    #[test]
    fn request_chain_filters_spans_by_request_id() {
        let tracer = Arc::new(Tracer::new(TraceMode::Full));
        tracer.set_thread_name("conn-1");
        {
            let mut span = tracer.span("serve", "request");
            span.arg("request_id", 77);
        }
        {
            let mut span = tracer.span_labeled("serve", "job", "acme:gcc#1");
            span.arg("request_id", 77);
            span.arg("shard", 2);
        }
        {
            let mut other = tracer.span("serve", "request");
            other.arg("request_id", 9);
        }
        let _untagged = tracer.span("serve", "idle");
        let doc = chrome_trace(&tracer.collect());
        let parsed = Json::parse(&doc.render()).unwrap();
        let chain = request_chain(&parsed, 77).unwrap();
        assert_eq!(chain.len(), 2, "{chain:?}");
        assert!(chain.iter().all(|s| s.thread == "conn-1"));
        assert!(chain.windows(2).all(|w| w[0].ts_us <= w[1].ts_us));
        assert!(chain.iter().any(|s| s.name == "job acme:gcc#1"));
        assert!(request_chain(&parsed, 12345).unwrap().is_empty());
        assert!(request_chain(&Json::Null, 1).is_err());
    }

    #[test]
    fn from_chrome_rejects_garbage() {
        assert!(TraceSummary::from_chrome_json(&Json::Null).is_err());
        let doc = Json::parse(r#"{"traceEvents":[{"ph":"Q","name":"n","tid":0}]}"#).unwrap();
        assert!(TraceSummary::from_chrome_json(&doc).is_err());
    }
}
