//! Integration tests: the three simulator personalities driving native
//! programs, ELFies and pinballs — including the qualitative shapes of the
//! paper's Fig. 11 (pinball vs ELFie instruction counts) and Table IV
//! (user-level vs full-system simulation).

use elfie_isa::{assemble, MarkerKind};
use elfie_pinball::RegionTrigger;
use elfie_pinball2elf::{convert, ConvertOptions};
use elfie_pinplay::{Logger, LoggerConfig};
use elfie_sim::{
    simulate_elfie, simulate_pinball, simulate_program, CoreParams, RoiMode, Simulator,
};
use elfie_vm::ExitReason;

fn compute_program(iters: u64) -> elfie_isa::Program {
    assemble(&format!(
        r#"
        .org 0x400000
        start:
            mov rcx, {iters}
            mov rbx, buf
        loop:
            mov rax, [rbx]
            add rax, rcx
            mov [rbx], rax
            imul rax, 3
            sub rcx, 1
            cmp rcx, 0
            jne loop
            mov rax, 231
            mov rdi, 0
            syscall
        .org 0x600000
        buf: .quad 1
        "#
    ))
    .expect("assembles")
}

/// Memory-intensive pointer-stride workload with occasional syscalls.
fn memory_program(iters: u64) -> elfie_isa::Program {
    assemble(&format!(
        r#"
        .org 0x400000
        start:
            mov rcx, {iters}
            mov rbx, 0x600000
            mov rsi, 0
        loop:
            mov rax, [rbx + rsi]
            add rax, 1
            mov [rbx + rsi], rax
            add rsi, 4160          ; page+line stride: cache/TLB hostile
            and rsi, 0xfffff
            sub rcx, 1
            mov rdx, rcx
            and rdx, 0xff
            cmp rdx, 0
            jne nosys
            mov rax, 96            ; gettimeofday
            mov rdi, tv
            mov r9, rsi            ; save the stride cursor
            mov rsi, 0
            syscall
            mov rsi, r9
        nosys:
            cmp rcx, 0
            jne loop
            mov rax, 231
            mov rdi, 0
            syscall
        .align 8
        tv: .zero 16
        "#
    ))
    .expect("assembles")
}

fn map_data(m: &mut elfie_vm::Machine<elfie_sim::TimingObserver>) {
    m.mem
        .map_range(0x600000, 0x600000 + (1 << 20) + 0x2000, elfie_vm::Perm::RW)
        .unwrap();
}

#[test]
fn program_simulation_produces_plausible_ipc() {
    let sim = Simulator::new(CoreParams::nehalem_like());
    let out = simulate_program(&compute_program(5_000), &sim, |_| {});
    assert!(matches!(out.exit, ExitReason::AllExited(0)));
    assert!(
        out.ipc > 0.05 && out.ipc <= sim.params.issue_width as f64,
        "ipc {}",
        out.ipc
    );
    assert!(out.stats.user_insns > 30_000);
    assert!(out.runtime_ns > 0);
}

#[test]
fn memory_bound_workload_has_lower_ipc() {
    let sim = Simulator::new(CoreParams::nehalem_like());
    let compute = simulate_program(&compute_program(5_000), &sim, |_| {});
    let memory = simulate_program(&memory_program(5_000), &sim, map_data);
    assert!(
        memory.ipc < compute.ipc,
        "memory {} vs compute {}",
        memory.ipc,
        compute.ipc
    );
    assert!(memory.stats.l1d_misses > compute.stats.l1d_misses);
}

#[test]
fn haswell_outperforms_nehalem_on_memory_bound_code() {
    // Table V's shape: bigger ROB/issue raises IPC.
    let prog = memory_program(4_000);
    let neh = simulate_program(&prog, &Simulator::new(CoreParams::nehalem_like()), map_data);
    let has = simulate_program(&prog, &Simulator::new(CoreParams::haswell_like()), map_data);
    assert!(
        has.ipc > neh.ipc,
        "haswell {} should beat nehalem {}",
        has.ipc,
        neh.ipc
    );
}

#[test]
fn elfie_simulation_skips_startup_via_marker() {
    let prog = compute_program(50_000);
    let region = 3000u64;
    let logger = Logger::new(LoggerConfig::fat(
        "sim",
        RegionTrigger::GlobalIcount(2000),
        region,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        roi_marker: Some((MarkerKind::Ssc, 1)),
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");

    let sim = Simulator {
        roi: RoiMode::FromMarker(MarkerKind::Ssc),
        ..Simulator::new(CoreParams::skylake_like())
    };
    let out = simulate_elfie(&elfie.bytes, &sim, vec![], |_| {}).expect("loads");
    assert!(matches!(out.exit, ExitReason::AllExited(0)));
    // Only the region (plus the 2 trampoline instructions after the
    // marker) is modelled — startup excluded.
    assert!(
        out.stats.user_insns >= region && out.stats.user_insns <= region + 16,
        "modelled {} vs region {region}",
        out.stats.user_insns
    );
    // Functionally, far more retired (startup + remap loops).
    let functional: u64 = out.machine_icounts.values().sum();
    assert!(functional > out.stats.user_insns);
}

#[test]
fn pinball_and_elfie_simulation_fig11_shape() {
    // The Fig. 11 observation, single-threaded corner: the instruction
    // counts of pinball simulation match the recorded counts exactly, and
    // the ELFie's modelled region matches too (no spin loops here).
    let prog = compute_program(50_000);
    let logger = Logger::new(LoggerConfig::fat(
        "f11",
        RegionTrigger::GlobalIcount(2000),
        2500,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");

    let sim_pb = Simulator {
        roi: RoiMode::Always,
        ..Simulator::sniper()
    };
    let pb_out = simulate_pinball(&pb, &sim_pb);
    assert!(
        matches!(pb_out.exit, ExitReason::AllExited(0)),
        "replay completed"
    );
    for (tid, &recorded) in &pb.region.thread_icounts {
        assert_eq!(
            pb_out.machine_icounts[tid], recorded,
            "constrained replay pins icounts to the recording"
        );
    }

    let opts = ConvertOptions {
        roi_marker: Some((MarkerKind::Sniper, 1)),
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    let e_out = simulate_elfie(&elfie.bytes, &Simulator::sniper(), vec![], |_| {}).expect("loads");
    let modelled = e_out.stats.user_insns;
    let recorded: u64 = pb.region.thread_icounts.values().sum();
    assert!(
        modelled >= recorded && modelled <= recorded + 16,
        "single-threaded ELFie matches recorded count: {modelled} vs {recorded}"
    );
}

#[test]
fn full_system_table4_shape() {
    // Table IV: full-system simulation adds a small fraction of ring-0
    // instructions, a disproportionate runtime increase, and a larger data
    // footprint.
    let prog = memory_program(20_000);
    let user = simulate_program(
        &prog,
        &Simulator {
            roi: RoiMode::Always,
            ..Simulator::coresim_sde()
        },
        map_data,
    );
    let full = simulate_program(
        &prog,
        &Simulator {
            roi: RoiMode::Always,
            ..Simulator::coresim_simics()
        },
        map_data,
    );
    assert_eq!(user.stats.kernel_insns, 0);
    assert!(full.stats.kernel_insns > 0);
    assert_eq!(
        full.stats.user_insns, user.stats.user_insns,
        "ring-3 instruction count identical in both modes"
    );
    let kernel_frac = full.stats.kernel_insns as f64 / full.stats.user_insns as f64;
    assert!(kernel_frac < 0.25, "kernel fraction small: {kernel_frac}");
    assert!(
        full.runtime_ns > user.runtime_ns,
        "extra kernel work costs time"
    );
    let footprint_user = user.stats.footprint_lines + user.stats.kernel_footprint_lines;
    let footprint_full = full.stats.footprint_lines + full.stats.kernel_footprint_lines;
    assert!(
        footprint_full > footprint_user,
        "full-system footprint larger: {footprint_full} vs {footprint_user}"
    );
}

#[test]
fn pc_count_stop_condition_for_sniper() {
    // The multi-threaded case study ends simulation at a (PC, count) pair.
    let prog = compute_program(100_000);
    let sim = Simulator {
        roi: RoiMode::Always,
        ..Simulator::new(CoreParams::gainestown_like())
    };
    let loop_head = 0x400000 + 10 + 10; // after the two mov-imm instructions
    let out_limited = {
        let mut m = elfie_vm::Machine::with_observer(
            elfie_vm::MachineConfig::default(),
            elfie_sim::TimingObserver::new(sim.params, 1, RoiMode::Always, None),
        );
        m.load_program(&prog);
        m.stop_conditions.push(elfie_vm::StopWhen::PcCount {
            pc: loop_head,
            count: 50,
        });
        let s = m.run(10_000_000);
        (s.reason, m.obs.stats().user_insns)
    };
    assert!(matches!(out_limited.0, ExitReason::StopCondition(0)));
    assert!(out_limited.1 < 1000, "stopped early: {}", out_limited.1);
}
