//! The timing core model shared by the three simulators.
//!
//! A [`TimingObserver`] attaches to any execution harness (native machine,
//! ELFie run, constrained pinball replay) and charges cycles per retired
//! instruction: issue-width base cost, branch-misprediction penalties from
//! a bimodal predictor, and memory stalls from a three-level cache + TLB
//! hierarchy with ROB-dependent latency overlap. A full-system mode
//! expands each system call into synthetic ring-0 kernel work that runs
//! through the *same* hierarchy — reproducing the user-level vs
//! full-system comparison of the paper's CoreSim case study (Table IV).

use crate::cache::{Cache, CacheParams, NextLinePrefetcher, Tlb};
use elfie_isa::{Insn, MarkerKind};
use elfie_vm::Observer;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Micro-architecture parameters.
#[derive(Debug, Clone, Copy)]
pub struct CoreParams {
    /// Human-readable configuration name.
    pub name: &'static str,
    /// Nominal clock in GHz.
    pub ghz: f64,
    /// Sustained issue width (instructions per cycle).
    pub issue_width: u64,
    /// Reorder-buffer entries (drives memory-latency overlap).
    pub rob: u64,
    /// Load/store-queue entries (extra overlap for stores).
    pub lsq: u64,
    /// Branch-misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2.
    pub l2: CacheParams,
    /// Shared L3.
    pub l3: CacheParams,
    /// L2 hit latency (cycles beyond L1).
    pub l2_lat: u64,
    /// L3 hit latency.
    pub l3_lat: u64,
    /// Memory latency.
    pub mem_lat: u64,
    /// Data TLB entries (4 KiB pages).
    pub dtlb_entries: u64,
    /// TLB-miss page-walk penalty in cycles.
    pub tlb_walk: u64,
    /// Enable the next-line L3 prefetcher.
    pub prefetch: bool,
}

impl CoreParams {
    /// An Intel Nehalem-like core (the gem5 case study's smaller config).
    pub fn nehalem_like() -> CoreParams {
        CoreParams {
            name: "nehalem-like",
            ghz: 2.66,
            issue_width: 4,
            rob: 128,
            lsq: 48,
            mispredict_penalty: 17,
            l1i: CacheParams {
                size: 32 << 10,
                line: 64,
                ways: 4,
            },
            l1d: CacheParams {
                size: 32 << 10,
                line: 64,
                ways: 8,
            },
            l2: CacheParams {
                size: 256 << 10,
                line: 64,
                ways: 8,
            },
            l3: CacheParams {
                size: 8 << 20,
                line: 64,
                ways: 16,
            },
            l2_lat: 10,
            l3_lat: 38,
            mem_lat: 190,
            dtlb_entries: 64,
            tlb_walk: 30,
            prefetch: true,
        }
    }

    /// An Intel Haswell-like core: larger ROB/RF/LSQ and wider issue (the
    /// gem5 case study's "impact of increasing the size of critical
    /// resources").
    pub fn haswell_like() -> CoreParams {
        CoreParams {
            name: "haswell-like",
            ghz: 3.4,
            issue_width: 8,
            rob: 192,
            lsq: 72,
            mispredict_penalty: 15,
            l2_lat: 11,
            l3_lat: 34,
            mem_lat: 170,
            dtlb_entries: 128,
            ..CoreParams::nehalem_like()
        }
    }

    /// An Intel Gainestown-like core, 8 of which make up the Sniper
    /// multi-core configuration of the paper's Section IV-B.
    pub fn gainestown_like() -> CoreParams {
        CoreParams {
            name: "gainestown-like",
            ghz: 2.66,
            ..CoreParams::nehalem_like()
        }
    }

    /// An Intel Skylake-like core (the CoreSim detailed model of Section
    /// IV-C).
    pub fn skylake_like() -> CoreParams {
        CoreParams {
            name: "skylake-like",
            ghz: 3.2,
            issue_width: 8,
            rob: 224,
            lsq: 128,
            mispredict_penalty: 16,
            l1d: CacheParams {
                size: 32 << 10,
                line: 64,
                ways: 8,
            },
            l2: CacheParams {
                size: 1 << 20,
                line: 64,
                ways: 16,
            },
            ..CoreParams::nehalem_like()
        }
    }

    /// Memory-level-parallelism factor: bigger ROBs overlap more of the
    /// miss latency.
    fn overlap(&self) -> f64 {
        let mlp = (self.rob as f64 / 48.0).clamp(1.0, 6.0);
        1.0 / mlp
    }
}

/// When the timing model starts charging cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RoiMode {
    /// Model everything from the first instruction.
    #[default]
    Always,
    /// Stay functional-only until a marker of this kind retires (the
    /// "skip the ELFie startup code" requirement).
    FromMarker(MarkerKind),
}

/// Synthetic kernel-cost model for full-system simulation.
#[derive(Debug, Clone, Copy)]
pub struct KernelModel {
    /// Ring-0 instructions charged per syscall (before per-kind scaling).
    pub base_insns: u64,
    /// Kernel data working-set size in bytes.
    pub working_set: u64,
    /// Base virtual address of kernel data (for cache/TLB modelling).
    pub data_base: u64,
    /// Base virtual address of kernel text.
    pub text_base: u64,
}

impl Default for KernelModel {
    fn default() -> Self {
        KernelModel {
            base_insns: 250,
            working_set: 192 << 10,
            data_base: 0xffff_8800_0000_0000,
            text_base: 0xffff_8000_0000_0000,
        }
    }
}

impl KernelModel {
    fn insns_for(&self, nr: u64) -> u64 {
        // Rough per-class costs, scaled from the base.
        let scale = match nr {
            0 | 1 => 2,  // read/write: copy loops
            2 => 3,      // open: path walk
            9 | 11 => 3, // mmap/munmap
            12 => 1,     // brk
            56 => 5,     // clone
            96 => 1,     // gettimeofday (vdso-ish, still kernel here)
            _ => 1,
        };
        self.base_insns * scale
    }
}

#[derive(Debug, Clone)]
struct BranchPredictor {
    table: Vec<u8>,
}

impl BranchPredictor {
    fn new() -> BranchPredictor {
        BranchPredictor {
            table: vec![1u8; 4096],
        }
    }

    fn index(pc: u64) -> usize {
        ((pc >> 1) & 0xfff) as usize
    }

    /// Predicts and updates; returns true on misprediction.
    fn resolve(&mut self, pc: u64, taken: bool) -> bool {
        let e = &mut self.table[Self::index(pc)];
        let predicted = *e >= 2;
        if taken {
            *e = (*e + 1).min(3);
        } else {
            *e = e.saturating_sub(1);
        }
        predicted != taken
    }
}

struct CoreState {
    cycles: f64,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    dtlb: Tlb,
    bp: BranchPredictor,
}

#[derive(Debug, Clone, Copy)]
struct PendingBranch {
    pc: u64,
    fallthrough: u64,
}

/// Aggregate simulation statistics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SimStats {
    /// User (ring-3) instructions modelled.
    pub user_insns: u64,
    /// Kernel (ring-0) instructions modelled (full-system only).
    pub kernel_insns: u64,
    /// Per-thread modelled instruction counts.
    pub per_thread: BTreeMap<u32, u64>,
    /// Branch mispredictions.
    pub mispredicts: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L3 misses.
    pub l3_misses: u64,
    /// Data-TLB misses.
    pub dtlb_misses: u64,
    /// Prefetches issued.
    pub prefetches: u64,
    /// Distinct user data cache lines touched (demand + prefetch).
    pub footprint_lines: u64,
    /// Distinct kernel data cache lines touched.
    pub kernel_footprint_lines: u64,
}

impl SimStats {
    /// Folds `other` into `self`, summing every counter and merging the
    /// per-thread map. Used by the sharded simulator to stitch per-slice
    /// statistics: the event counters are additive across consecutive
    /// slices, but the footprint fields are *per-slice distinct* counts, so
    /// the stitched footprint is the sum of per-slice cardinalities (an
    /// upper bound on the true distinct-line count — lines touched in two
    /// slices are counted twice).
    pub fn absorb(&mut self, other: &SimStats) {
        self.user_insns = self.user_insns.saturating_add(other.user_insns);
        self.kernel_insns = self.kernel_insns.saturating_add(other.kernel_insns);
        for (&tid, &n) in &other.per_thread {
            let e = self.per_thread.entry(tid).or_insert(0);
            *e = e.saturating_add(n);
        }
        self.mispredicts = self.mispredicts.saturating_add(other.mispredicts);
        self.l1d_misses = self.l1d_misses.saturating_add(other.l1d_misses);
        self.l2_misses = self.l2_misses.saturating_add(other.l2_misses);
        self.l3_misses = self.l3_misses.saturating_add(other.l3_misses);
        self.dtlb_misses = self.dtlb_misses.saturating_add(other.dtlb_misses);
        self.prefetches = self.prefetches.saturating_add(other.prefetches);
        self.footprint_lines = self.footprint_lines.saturating_add(other.footprint_lines);
        self.kernel_footprint_lines = self
            .kernel_footprint_lines
            .saturating_add(other.kernel_footprint_lines);
    }
}

/// The timing observer.
pub struct TimingObserver {
    params: CoreParams,
    ncores: usize,
    cores: Vec<CoreState>,
    l3: Cache,
    pf: NextLinePrefetcher,
    kernel: Option<KernelModel>,
    roi: RoiMode,
    active: bool,
    stats: SimStats,
    footprint: HashSet<u64>,
    kernel_footprint: HashSet<u64>,
    pending: HashMap<u32, PendingBranch>,
    syscall_counter: u64,
}

impl TimingObserver {
    /// Creates an observer with `ncores` private L1/L2 cores sharing one
    /// L3. `kernel` enables full-system mode.
    pub fn new(
        params: CoreParams,
        ncores: usize,
        roi: RoiMode,
        kernel: Option<KernelModel>,
    ) -> Self {
        let ncores = ncores.max(1);
        let cores = (0..ncores)
            .map(|_| CoreState {
                cycles: 0.0,
                l1i: Cache::new(params.l1i),
                l1d: Cache::new(params.l1d),
                l2: Cache::new(params.l2),
                dtlb: Tlb::new(params.dtlb_entries, 4096, 4),
                bp: BranchPredictor::new(),
            })
            .collect();
        TimingObserver {
            params,
            ncores,
            cores,
            l3: Cache::new(params.l3),
            pf: NextLinePrefetcher::default(),
            kernel,
            roi,
            active: matches!(roi, RoiMode::Always),
            stats: SimStats::default(),
            footprint: HashSet::new(),
            kernel_footprint: HashSet::new(),
            pending: HashMap::new(),
            syscall_counter: 0,
        }
    }

    fn core_of(&self, tid: u32) -> usize {
        tid as usize % self.ncores
    }

    /// True once the ROI has been reached.
    pub fn is_active(&self) -> bool {
        self.active
    }

    /// Simulated time: the maximum core cycle count (cores run in
    /// parallel).
    pub fn cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).fold(0.0, f64::max) as u64
    }

    /// Total core cycles summed (serialised view).
    pub fn total_core_cycles(&self) -> u64 {
        self.cores.iter().map(|c| c.cycles).sum::<f64>() as u64
    }

    /// Simulated wall-clock nanoseconds.
    pub fn runtime_ns(&self) -> u64 {
        (self.cycles() as f64 / self.params.ghz) as u64
    }

    /// Statistics snapshot (footprints folded in).
    pub fn stats(&self) -> SimStats {
        let mut s = self.stats.clone();
        s.footprint_lines = self.footprint.len() as u64;
        s.kernel_footprint_lines = self.kernel_footprint.len() as u64;
        s
    }

    /// The core parameters.
    pub fn params(&self) -> &CoreParams {
        &self.params
    }

    fn data_access(&mut self, core: usize, addr: u64, kernel: bool) {
        let line = addr / self.params.l1d.line;
        if kernel {
            self.kernel_footprint.insert(line);
        } else {
            self.footprint.insert(line);
        }
        let c = &mut self.cores[core];
        if !c.dtlb.access(addr) {
            self.stats.dtlb_misses += 1;
            c.cycles += self.params.tlb_walk as f64;
        }
        if c.l1d.access(addr) {
            return;
        }
        self.stats.l1d_misses += 1;
        let overlap = self.params.overlap();
        if c.l2.access(addr) {
            c.cycles += self.params.l2_lat as f64 * overlap;
            return;
        }
        self.stats.l2_misses += 1;
        if self.l3.access(addr) {
            c.cycles += self.params.l3_lat as f64 * overlap;
            return;
        }
        self.stats.l3_misses += 1;
        c.cycles += self.params.mem_lat as f64 * overlap;
        if self.params.prefetch {
            let next = self.pf.on_miss(&mut self.l3, addr);
            self.stats.prefetches += 1;
            let nline = next / self.params.l1d.line;
            if kernel {
                self.kernel_footprint.insert(nline);
            } else {
                self.footprint.insert(nline);
            }
        }
    }

    fn charge_kernel(&mut self, core: usize, nr: u64) {
        let Some(model) = self.kernel else { return };
        let insns = model.insns_for(nr);
        self.stats.kernel_insns += insns;
        self.cores[core].cycles += insns as f64 / self.params.issue_width as f64;
        self.syscall_counter += 1;
        // Kernel instruction fetch: walk a window of kernel text.
        let text_lines = insns / 8;
        for i in 0..text_lines {
            let addr = model.text_base + ((nr * 8192 + i * 64) % (128 << 10));
            let c = &mut self.cores[core];
            if !c.l1i.access(addr) && !c.l2.access(addr) && !self.l3.access(addr) {
                self.cores[core].cycles += self.params.mem_lat as f64 * self.params.overlap();
            }
        }
        // Kernel data: a sequential walk starting at a per-syscall
        // rotating offset (buffer copies, dentry/page-cache touches).
        let data_accesses = insns / 6;
        let base_off = (self.syscall_counter * 8192) % model.working_set;
        for i in 0..data_accesses {
            let addr = model.data_base + ((base_off + i * 64) % model.working_set);
            self.data_access(core, addr, true);
        }
    }
}

impl Observer for TimingObserver {
    fn on_insn(&mut self, tid: u32, rip: u64, insn: &Insn, len: usize) {
        if !self.active {
            if let RoiMode::FromMarker(kind) = self.roi {
                if let Insn::Marker(k, tag) = insn {
                    // Reserved callback tags (elfie_on_start etc.) are not
                    // region-of-interest markers.
                    let callback = (0xE1F0..=0xE1F2).contains(tag);
                    if *k == kind && !callback {
                        self.active = true;
                    }
                }
            }
            return;
        }
        let core = self.core_of(tid);
        // Resolve a pending conditional branch for this thread.
        if let Some(pb) = self.pending.remove(&tid) {
            let taken = rip != pb.fallthrough;
            if self.cores[core].bp.resolve(pb.pc, taken) {
                self.stats.mispredicts += 1;
                self.cores[core].cycles += self.params.mispredict_penalty as f64;
            }
        }
        self.stats.user_insns += 1;
        *self.stats.per_thread.entry(tid).or_insert(0) += 1;
        let c = &mut self.cores[core];
        c.cycles += 1.0 / self.params.issue_width as f64;
        // Instruction fetch.
        if !c.l1i.access(rip) {
            if !c.l2.access(rip) && !self.l3.access(rip) {
                self.cores[core].cycles += self.params.mem_lat as f64 * self.params.overlap();
            } else {
                self.cores[core].cycles += self.params.l2_lat as f64;
            }
        }
        if let Insn::Jcc(..) = insn {
            self.pending.insert(
                tid,
                PendingBranch {
                    pc: rip,
                    fallthrough: rip + len as u64,
                },
            );
        }
    }

    fn on_mem_read(&mut self, tid: u32, addr: u64, _size: u64) {
        if self.active {
            self.data_access(self.core_of(tid), addr, false);
        }
    }

    fn on_mem_write(&mut self, tid: u32, addr: u64, _size: u64) {
        if self.active {
            self.data_access(self.core_of(tid), addr, false);
        }
    }

    fn on_syscall(&mut self, tid: u32, nr: u64, _args: &[u64; 6]) {
        if self.active {
            // SYSCALL itself costs a pipeline drain either way.
            let core = self.core_of(tid);
            self.cores[core].cycles += 40.0;
            self.charge_kernel(core, nr);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elfie_isa::Reg;

    fn obs(params: CoreParams) -> TimingObserver {
        TimingObserver::new(params, 1, RoiMode::Always, None)
    }

    #[test]
    fn cycles_accumulate_with_instructions() {
        let mut t = obs(CoreParams::nehalem_like());
        for i in 0..100u64 {
            t.on_insn(0, 0x400000 + i * 4, &Insn::Nop, 1);
        }
        let s = t.stats();
        assert_eq!(s.user_insns, 100);
        assert!(t.cycles() >= 100 / 4);
    }

    #[test]
    fn memory_misses_cost_cycles() {
        let mut a = obs(CoreParams::nehalem_like());
        let mut b = obs(CoreParams::nehalem_like());
        for i in 0..200u64 {
            a.on_insn(
                0,
                0x400000,
                &Insn::Load(Reg::Rax, elfie_isa::Mem::base(Reg::Rbx)),
                9,
            );
            a.on_mem_read(0, 0x10_0000, 8); // same line: hits
            b.on_insn(
                0,
                0x400000,
                &Insn::Load(Reg::Rax, elfie_isa::Mem::base(Reg::Rbx)),
                9,
            );
            b.on_mem_read(0, 0x10_0000 + i * 4096 * 7, 8); // page stride: misses
        }
        assert!(
            b.cycles() > 2 * a.cycles(),
            "a={} b={}",
            a.cycles(),
            b.cycles()
        );
        assert!(b.stats().dtlb_misses > a.stats().dtlb_misses);
    }

    #[test]
    fn bigger_rob_hides_latency() {
        let run = |p: CoreParams| {
            let mut t = obs(p);
            for i in 0..500u64 {
                t.on_insn(0, 0x400000, &Insn::Nop, 1);
                t.on_mem_read(0, 0x20_0000 + i * 64 * 97, 8);
            }
            t.cycles()
        };
        let small = run(CoreParams::nehalem_like());
        let big = run(CoreParams::haswell_like());
        assert!(big < small, "haswell {big} < nehalem {small}");
    }

    #[test]
    fn branch_mispredictions_detected() {
        let mut t = obs(CoreParams::nehalem_like());
        // Alternate taken/not-taken: bimodal predictor mispredicts often.
        let branch = Insn::Jcc(elfie_isa::Cond::E, 10);
        for i in 0..100u64 {
            t.on_insn(0, 0x400000, &branch, 6);
            let next = if i % 2 == 0 { 0x400006 } else { 0x400020 };
            t.on_insn(0, next, &Insn::Nop, 1);
        }
        assert!(
            t.stats().mispredicts > 20,
            "mispredicts: {}",
            t.stats().mispredicts
        );
    }

    #[test]
    fn roi_mode_skips_startup() {
        let mut t = TimingObserver::new(
            CoreParams::nehalem_like(),
            1,
            RoiMode::FromMarker(MarkerKind::Sniper),
            None,
        );
        for _ in 0..50 {
            t.on_insn(0, 0x100, &Insn::Nop, 1);
        }
        assert_eq!(t.stats().user_insns, 0, "startup not modelled");
        t.on_insn(0, 0x200, &Insn::Marker(MarkerKind::Sniper, 1), 6);
        assert!(t.is_active());
        t.on_insn(0, 0x206, &Insn::Nop, 1);
        assert_eq!(t.stats().user_insns, 1);
    }

    #[test]
    fn full_system_adds_kernel_instructions_and_footprint() {
        let run = |kernel: Option<KernelModel>| {
            let mut t = TimingObserver::new(CoreParams::skylake_like(), 1, RoiMode::Always, kernel);
            for i in 0..1000u64 {
                t.on_insn(0, 0x400000 + (i % 64) * 4, &Insn::Nop, 1);
                t.on_mem_read(0, 0x60_0000 + (i % 256) * 64, 8);
                if i % 100 == 0 {
                    t.on_syscall(0, 0, &[0; 6]);
                }
            }
            (t.stats(), t.cycles())
        };
        let (user_only, user_cycles) = run(None);
        let (full, full_cycles) = run(Some(KernelModel::default()));
        assert_eq!(user_only.kernel_insns, 0);
        assert!(full.kernel_insns > 0);
        assert_eq!(
            full.user_insns, user_only.user_insns,
            "ring3 count unchanged"
        );
        assert!(full_cycles > user_cycles, "kernel work costs time");
        assert!(
            full.kernel_footprint_lines > 0,
            "kernel data counted separately"
        );
    }

    #[test]
    fn threads_map_to_cores() {
        let mut t = TimingObserver::new(CoreParams::gainestown_like(), 4, RoiMode::Always, None);
        for tid in 0..4u32 {
            for _ in 0..100 {
                // Distinct code per thread so the shared L3 does not make
                // later cores cheaper.
                t.on_insn(tid, 0x400000 + tid as u64 * 0x10000, &Insn::Nop, 1);
            }
        }
        let s = t.stats();
        assert_eq!(s.per_thread.len(), 4);
        // Parallel: max core time ~ single thread's time, not the sum.
        assert!(t.cycles() * 3 < t.total_core_cycles());
    }
}
