//! # elfie-sim
//!
//! The x86-simulator substrate of the reproduction: a shared timing core
//! model ([`core::TimingObserver`]) over set-associative caches, TLBs and
//! a next-line prefetcher ([`cache`]), plus drivers ([`drivers`]) that run
//! native programs, ELFies (unconstrained, via the system loader) and
//! pinballs (constrained replay) under three simulator personalities:
//! Sniper-like (8-core), CoreSim-like (user-level SDE vs full-system
//! Simics front-ends) and gem5-like (SE mode, Nehalem/Haswell-like
//! configs).
//!
//! The point the paper makes — and this crate preserves — is that ELFies
//! need **no simulator modifications**: [`drivers::simulate_elfie`] is the
//! ordinary program path plus the emulated ELF loader, while pinballs need
//! the dedicated replay-aware path ([`drivers::simulate_pinball`]).
//!
//! Long regions can additionally be simulated in parallel *within* the
//! region: [`shard::simulate_pinball_sharded`] runs a fast functional
//! profiling pass that captures interval snapshots, fans the slices out
//! over a worker pool, and deterministically stitches the per-slice
//! results (`O(region / workers)` wall time; see [`shard`] for the
//! determinism contract).

pub mod cache;
pub mod core;
pub mod drivers;
pub mod shard;

pub use crate::core::{CoreParams, KernelModel, RoiMode, SimStats, TimingObserver};
pub use cache::{Cache, CacheParams, NextLinePrefetcher, Tlb};
pub use drivers::{simulate_elfie, simulate_pinball, simulate_program, SimOutcome, Simulator};
pub use shard::{
    simulate_pinball_sharded, simulate_pinball_sharded_with_progress, ShardConfig, ShardPhase,
    ShardedOutcome, SliceReport,
};
