//! Simulation drivers: run a program, an ELFie, or a pinball under a
//! [`TimingObserver`] and collect results.
//!
//! Three simulator personalities are provided, mirroring the paper's
//! Section III-C:
//!
//! * [`Simulator::sniper`] — a Pin-based-style 8-core out-of-order model
//!   (Gainestown-like) that simulates ELFies unconstrained and pinballs
//!   via constrained replay;
//! * [`Simulator::coresim_sde`] / [`Simulator::coresim_simics`] — a
//!   cycle-level Skylake-like model with a user-level (SDE) front-end or a
//!   full-system (Simics) front-end that also models ring-0 work;
//! * [`Simulator::gem5_se`] — a binary-driven syscall-emulation model,
//!   parameterised by micro-architecture (Nehalem-like / Haswell-like).

use crate::core::{CoreParams, KernelModel, RoiMode, SimStats, TimingObserver};
use elfie_isa::Program;
use elfie_pinball::Pinball;
use elfie_pinplay::{ReplayConfig, Replayer};
use elfie_trace::Tracer;
use elfie_vm::{ExitReason, FastPathStats, Machine, MachineConfig, StopWhen};
use std::collections::BTreeMap;
use std::sync::Arc;

/// A configured simulator.
#[derive(Debug, Clone)]
pub struct Simulator {
    /// Core micro-architecture.
    pub params: CoreParams,
    /// Number of cores.
    pub ncores: usize,
    /// Model ring-0 kernel work (full-system simulation).
    pub full_system: bool,
    /// Kernel cost model used when `full_system` is set.
    pub kernel_model: KernelModel,
    /// When the performance model engages.
    pub roi: RoiMode,
    /// Instruction budget for the functional run.
    pub fuel: u64,
    /// Scheduler seed for the functional machine.
    pub seed: u64,
    /// Functional-front-end thread-multiplexing quantum in instructions.
    /// Pin-based front-ends serialise threads in coarse slices, which is
    /// what lets spin loops inflate unconstrained multi-threaded runs
    /// (Fig. 11); native hardware corresponds to a small quantum.
    pub quantum: u64,
    /// Optional timeline tracer: each `simulate_*` run becomes a `sim`
    /// span (args: cycles, instructions) and pinball simulations inherit
    /// the replayer's `replay` events. Does not affect timing results.
    pub tracer: Option<Arc<Tracer>>,
}

impl Simulator {
    /// A single-core simulator with the given micro-architecture.
    pub fn new(params: CoreParams) -> Simulator {
        Simulator {
            params,
            ncores: 1,
            full_system: false,
            kernel_model: KernelModel::default(),
            roi: RoiMode::Always,
            fuel: 500_000_000,
            seed: 1,
            quantum: 64,
            tracer: None,
        }
    }

    /// Attaches a tracer (builder form of setting [`Simulator::tracer`]).
    pub fn with_tracer(mut self, tracer: Arc<Tracer>) -> Simulator {
        self.tracer = Some(tracer);
        self
    }

    /// The Sniper-like 8-core configuration (paper Section IV-B: "a
    /// configuration that mimics an Intel Gainestown out-of-order 8-core
    /// processor").
    pub fn sniper() -> Simulator {
        Simulator {
            ncores: 8,
            roi: RoiMode::FromMarker(elfie_isa::MarkerKind::Sniper),
            // Pin-based functional front-end: coarse thread multiplexing.
            quantum: 6_144,
            ..Simulator::new(CoreParams::gainestown_like())
        }
    }

    /// CoreSim with the SDE (user-level) front-end.
    pub fn coresim_sde() -> Simulator {
        Simulator {
            roi: RoiMode::FromMarker(elfie_isa::MarkerKind::Ssc),
            ..Simulator::new(CoreParams::skylake_like())
        }
    }

    /// CoreSim with the Simics (full-system) front-end.
    pub fn coresim_simics() -> Simulator {
        Simulator {
            full_system: true,
            roi: RoiMode::FromMarker(elfie_isa::MarkerKind::Simics),
            ..Simulator::new(CoreParams::skylake_like())
        }
    }

    /// gem5-style syscall-emulation-mode simulator for the given core.
    pub fn gem5_se(params: CoreParams) -> Simulator {
        Simulator {
            roi: RoiMode::FromMarker(elfie_isa::MarkerKind::Ssc),
            ..Simulator::new(params)
        }
    }

    pub(crate) fn observer(&self) -> TimingObserver {
        TimingObserver::new(
            self.params,
            self.ncores,
            self.roi,
            if self.full_system {
                Some(self.kernel_model)
            } else {
                None
            },
        )
    }

    pub(crate) fn machine_config(&self) -> MachineConfig {
        MachineConfig {
            seed: self.seed,
            quantum: self.quantum,
            ..MachineConfig::default()
        }
    }
}

/// The result of one simulation.
#[derive(Debug, Clone)]
pub struct SimOutcome {
    /// Timing statistics.
    pub stats: SimStats,
    /// Simulated cycles (max across cores).
    pub cycles: u64,
    /// Simulated runtime in nanoseconds.
    pub runtime_ns: u64,
    /// Instructions per cycle over the modelled region (user + kernel).
    pub ipc: f64,
    /// Cycles per instruction.
    pub cpi: f64,
    /// How the functional run ended.
    pub exit: ExitReason,
    /// Functional per-thread retired counts (including any startup code).
    pub machine_icounts: BTreeMap<u32, u64>,
    /// Functional-execution fast-path counters (block cache / TLB) of the
    /// underlying VM run.
    pub fastpath: FastPathStats,
}

/// Opens the per-run span on the simulator's optional tracer.
fn sim_span(sim: &Simulator, name: &'static str) -> elfie_trace::Span {
    elfie_trace::maybe_span(sim.tracer.as_ref(), "sim", name)
}

/// Records the run's headline numbers as span args before the guard drops.
fn finish_span(span: &mut elfie_trace::Span, out: &SimOutcome) {
    span.arg("cycles", out.cycles);
    span.arg("insns", out.stats.user_insns + out.stats.kernel_insns);
    span.arg("guest_insns", out.fastpath.insns);
}

fn outcome(
    obs: &TimingObserver,
    exit: ExitReason,
    machine_icounts: BTreeMap<u32, u64>,
    fastpath: FastPathStats,
) -> SimOutcome {
    let stats = obs.stats();
    let cycles = obs.cycles().max(1);
    let insns = stats.user_insns + stats.kernel_insns;
    SimOutcome {
        runtime_ns: obs.runtime_ns(),
        ipc: insns as f64 / cycles as f64,
        cpi: cycles as f64 / insns.max(1) as f64,
        stats,
        cycles,
        exit,
        machine_icounts,
        fastpath,
    }
}

pub(crate) fn collect_icounts<O: elfie_vm::Observer>(m: &Machine<O>) -> BTreeMap<u32, u64> {
    m.threads.iter().map(|t| (t.tid, t.icount)).collect()
}

/// Simulates a whole program (execution-driven, like CoreSim running any
/// Linux executable).
pub fn simulate_program(
    prog: &Program,
    sim: &Simulator,
    setup: impl FnOnce(&mut Machine<TimingObserver>),
) -> SimOutcome {
    let mut span = sim_span(sim, "simulate_program");
    let mut m = Machine::with_observer(sim.machine_config(), sim.observer());
    m.load_program(prog);
    setup(&mut m);
    let s = m.run(sim.fuel);
    let icounts = collect_icounts(&m);
    let out = outcome(&m.obs, s.reason, icounts, m.fastpath_stats());
    finish_span(&mut span, &out);
    out
}

/// Simulates an ELFie image: loads it with the emulated system loader and
/// runs it unconstrained. `setup` stages sysstate files etc.; `stop`
/// appends extra end-of-simulation conditions (e.g. the `(PC, count)`
/// convention of the Sniper case study).
///
/// # Errors
/// Returns the loader error when the image cannot be loaded.
pub fn simulate_elfie(
    elf_bytes: &[u8],
    sim: &Simulator,
    stop: Vec<StopWhen>,
    setup: impl FnOnce(&mut Machine<TimingObserver>),
) -> Result<SimOutcome, elfie_elf::LoadError> {
    let mut span = sim_span(sim, "simulate_elfie");
    let mut m = Machine::with_observer(sim.machine_config(), sim.observer());
    setup(&mut m);
    let loader = elfie_elf::LoaderConfig {
        seed: sim.seed,
        ..elfie_elf::LoaderConfig::default()
    };
    elfie_elf::load(&mut m, elf_bytes, &loader)?;
    m.stop_conditions = stop;
    let s = m.run(sim.fuel);
    let icounts = collect_icounts(&m);
    let out = outcome(&m.obs, s.reason, icounts, m.fastpath_stats());
    finish_span(&mut span, &out);
    Ok(out)
}

/// Simulates a pinball via constrained replay — the "Sniper modified to
/// include the PinPlay library" path. The replay schedule enforces the
/// recorded order, so instruction counts match the recording exactly (and
/// the timing results inherit the paper's caveat about artificial stalls).
pub fn simulate_pinball(pinball: &Pinball, sim: &Simulator) -> SimOutcome {
    let mut span = sim_span(sim, "simulate_pinball");
    let mut replayer = Replayer::new(ReplayConfig {
        machine: sim.machine_config(),
        ..ReplayConfig::default()
    });
    if let Some(tracer) = &sim.tracer {
        replayer = replayer.with_tracer(Arc::clone(tracer));
    }
    let (summary, m) = replayer.replay_full_with(pinball, sim.observer(), |_| {});
    let exit = if summary.completed {
        ExitReason::AllExited(0)
    } else {
        ExitReason::Deadlock // divergence; detail in summary
    };
    let icounts = collect_icounts(&m);
    let out = outcome(&m.obs, exit, icounts, m.fastpath_stats());
    finish_span(&mut span, &out);
    out
}
