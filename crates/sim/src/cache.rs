//! Set-associative caches, TLBs and a next-line prefetcher — the memory
//! hierarchy building blocks shared by the Sniper-like, CoreSim-like and
//! gem5-like simulators.

/// Geometry of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheParams {
    /// Total capacity in bytes.
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
    /// Associativity (ways).
    pub ways: usize,
}

impl CacheParams {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        (self.size / self.line / self.ways as u64).max(1)
    }
}

/// An LRU set-associative cache.
#[derive(Debug, Clone)]
pub struct Cache {
    params: CacheParams,
    /// `sets × ways` tags; `u64::MAX` = invalid. LRU order per set: index
    /// 0 is most recent.
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

const INVALID: u64 = u64::MAX;

impl Cache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics if the line size is not a power of two or ways is zero.
    pub fn new(params: CacheParams) -> Cache {
        assert!(params.line.is_power_of_two() && params.ways > 0);
        let slots = params.sets() as usize * params.ways;
        Cache {
            params,
            tags: vec![INVALID; slots],
            hits: 0,
            misses: 0,
        }
    }

    /// The configured geometry.
    pub fn params(&self) -> CacheParams {
        self.params
    }

    fn set_range(&self, addr: u64) -> (usize, u64) {
        let line = addr / self.params.line;
        let set = (line % self.params.sets()) as usize;
        (set * self.params.ways, line)
    }

    /// Accesses `addr`; returns true on hit. Misses fill with LRU
    /// eviction.
    pub fn access(&mut self, addr: u64) -> bool {
        let (base, line) = self.set_range(addr);
        let ways = self.params.ways;
        let set = &mut self.tags[base..base + ways];
        if let Some(pos) = set.iter().position(|&t| t == line) {
            set[..=pos].rotate_right(1);
            self.hits += 1;
            true
        } else {
            set.rotate_right(1);
            set[0] = line;
            self.misses += 1;
            false
        }
    }

    /// Inserts a line without counting an access (prefetch fill).
    pub fn fill(&mut self, addr: u64) {
        let (base, line) = self.set_range(addr);
        let ways = self.params.ways;
        let set = &mut self.tags[base..base + ways];
        if !set.contains(&line) {
            set.rotate_right(1);
            set[0] = line;
        }
    }

    /// True if the line containing `addr` is resident (no state change).
    pub fn probe(&self, addr: u64) -> bool {
        let (base, line) = self.set_range(addr);
        self.tags[base..base + self.params.ways].contains(&line)
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Miss ratio in `[0, 1]`.
    pub fn miss_ratio(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.misses as f64 / total as f64
        }
    }
}

/// A TLB is a cache of page translations.
#[derive(Debug, Clone)]
pub struct Tlb {
    inner: Cache,
}

impl Tlb {
    /// Creates a TLB with `entries` entries of `page` bytes each,
    /// `ways`-associative.
    pub fn new(entries: u64, page: u64, ways: usize) -> Tlb {
        Tlb {
            inner: Cache::new(CacheParams {
                size: entries * page,
                line: page,
                ways,
            }),
        }
    }

    /// Looks up the page containing `addr`; true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        self.inner.access(addr)
    }

    /// (hits, misses).
    pub fn stats(&self) -> (u64, u64) {
        self.inner.stats()
    }
}

/// A simple next-line prefetcher: every demand miss triggers a prefetch of
/// the following line into the target cache.
#[derive(Debug, Clone, Default)]
pub struct NextLinePrefetcher {
    /// Number of prefetches issued.
    pub issued: u64,
}

impl NextLinePrefetcher {
    /// Reacts to a demand miss at `addr`, filling `cache` with the next
    /// line and returning the prefetched address.
    pub fn on_miss(&mut self, cache: &mut Cache, addr: u64) -> u64 {
        let line = cache.params().line;
        let next = (addr / line + 1) * line;
        cache.fill(next);
        self.issued += 1;
        next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Cache {
        Cache::new(CacheParams {
            size: 1024,
            line: 64,
            ways: 2,
        })
    }

    #[test]
    fn hit_after_fill() {
        let mut c = small();
        assert!(!c.access(0x100));
        assert!(c.access(0x100));
        assert!(c.access(0x13f), "same line");
        assert_eq!(c.stats(), (2, 1));
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = small(); // 8 sets, 2 ways; set stride = 512 bytes
        let a = 0x0;
        let b = 0x200; // same set as a (8 sets × 64B lines)
        let d = 0x400; // same set again
        assert!(!c.access(a));
        assert!(!c.access(b));
        assert!(c.access(a), "two ways hold a and b");
        assert!(!c.access(d), "evicts LRU (b)");
        assert!(c.access(a), "a was MRU, still resident");
        assert!(!c.access(b), "b was evicted");
    }

    #[test]
    fn probe_does_not_change_state() {
        let mut c = small();
        c.access(0x40);
        let (h, m) = c.stats();
        assert!(c.probe(0x40));
        assert!(!c.probe(0x9940));
        assert_eq!(c.stats(), (h, m));
    }

    #[test]
    fn prefetcher_fills_next_line() {
        let mut c = small();
        let mut pf = NextLinePrefetcher::default();
        assert!(!c.access(0x80));
        let next = pf.on_miss(&mut c, 0x80);
        assert_eq!(next, 0xc0);
        assert!(c.probe(0xc0), "next line resident");
        assert_eq!(pf.issued, 1);
    }

    #[test]
    fn tlb_tracks_pages() {
        let mut t = Tlb::new(4, 4096, 4);
        assert!(!t.access(0x1000));
        assert!(t.access(0x1fff), "same page");
        assert!(!t.access(0x2000));
    }

    #[test]
    fn miss_ratio() {
        let mut c = small();
        c.access(0);
        c.access(0);
        c.access(0);
        c.access(64 * 1024);
        assert!((c.miss_ratio() - 0.5).abs() < 1e-12);
    }
}
