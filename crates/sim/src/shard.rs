//! Sharded intra-region simulation over interval snapshots.
//!
//! Detailed timing simulation of a long region is serial in the region
//! length; this module cuts that dependence to `O(region / workers)` wall
//! time. A fast *profiling pass* (functional replay with a
//! [`BbvCollector`] observer — no timing model) captures an interval
//! [`Snapshot`] of the replay session every `interval` instructions. The
//! resulting `K + 1` slices are then fanned out over a worker pool: each
//! worker boots a fresh [`TimingObserver`] machine from its slice's
//! snapshot (the first slice boots from the pinball itself), runs to the
//! next snapshot's recorded instruction boundary, and reports per-slice
//! statistics. A deterministic *stitch* merges the per-slice results in
//! slice order.
//!
//! # Determinism contract
//!
//! * The **functional** execution is bit-identical to serial replay at any
//!   interval: resuming from a snapshot reproduces the exact state
//!   sequence of the capturing session (proven byte-for-byte by the
//!   `snapshot_resume` tests in `elfie-pinplay`). The final slice's
//!   [`ReplaySummary`], per-thread instruction counts, and VM fast-path
//!   instruction count therefore equal the serial run's.
//! * The **stitched timing outcome is a pure function of the interval**:
//!   it does not depend on the worker count, because the slice boundaries
//!   are fixed by the profiling pass and every slice simulates in
//!   isolation. `shards = 1, 2, 8, …` all produce the identical
//!   [`SimOutcome`].
//! * With `interval >= region length` the profiling pass emits **zero
//!   snapshots**, the single slice is an ordinary constrained replay, and
//!   the stitched outcome equals [`simulate_pinball`]'s exactly.
//!
//! What sharding *does* change, deliberately, is micro-architectural
//! warm-up: each slice starts with cold simulator caches and branch
//! predictors, so for `K > 0` the stitched cycle count differs from the
//! serial one in the same way SimPoint-style sampled simulation differs
//! from whole-program simulation. The per-slice footprint cardinalities
//! are summed (see [`SimStats::absorb`]).
//!
//! [`simulate_pinball`]: crate::drivers::simulate_pinball

use crate::core::{SimStats, TimingObserver};
use crate::drivers::{collect_icounts, SimOutcome, Simulator};
use elfie_pinball::{Pinball, Snapshot};
use elfie_pinplay::{ReplayConfig, ReplaySession, ReplaySummary, Replayer, SessionStep};
use elfie_simpoint::{BbvCollector, BbvProfile};
use elfie_vm::{ExitReason, FastPathStats};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Configuration for [`simulate_pinball_sharded`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardConfig {
    /// Worker threads simulating slices concurrently. `0` and `1` both
    /// mean serial slice execution (the slicing itself still happens).
    pub shards: usize,
    /// Snapshot interval in retired instructions. A snapshot is captured
    /// at the first scheduling boundary at or after each multiple of the
    /// interval; an interval at least as long as the region yields a
    /// single slice.
    pub interval: u64,
}

impl Default for ShardConfig {
    fn default() -> ShardConfig {
        ShardConfig {
            shards: 1,
            interval: 10_000_000,
        }
    }
}

/// Progress notifications emitted by
/// [`simulate_pinball_sharded_with_progress`] as the run crosses phase
/// boundaries. The serve layer forwards these to `--follow` clients.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardPhase {
    /// The profiling pass (snapshot chain + BBV collection) started.
    Profile,
    /// `done` of `total` slices have finished simulating.
    Slice {
        /// Slices finished so far.
        done: u64,
        /// Total slices in this run.
        total: u64,
    },
    /// The deterministic stitch started.
    Stitch,
}

/// Per-slice accounting from a sharded run, in slice order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SliceReport {
    /// Slice index (0 = from the pinball boot image).
    pub index: usize,
    /// Global instruction count the slice started at.
    pub start_icount: u64,
    /// Global instruction count the slice ended at.
    pub end_icount: u64,
    /// Instructions the timing model charged in this slice.
    pub insns: u64,
    /// Simulated cycles of this slice (max across cores).
    pub cycles: u64,
    /// Host wall nanoseconds the slice took to simulate.
    pub wall_ns: u64,
}

/// The result of a sharded simulation: the stitched timing outcome plus
/// the artifacts of the profiling pass (snapshot chain, BBV profile) and
/// the scheduling accounting the bench/trace layers report.
#[derive(Debug, Clone)]
pub struct ShardedOutcome {
    /// Stitched timing outcome (see the module docs for semantics).
    pub outcome: SimOutcome,
    /// Replay summary of the final slice — bit-identical to a serial
    /// replay's summary.
    pub summary: ReplaySummary,
    /// BBV profile collected by the profiling pass, with one vector per
    /// `interval` instructions (aligned with the slice schedule).
    pub bbv: BbvProfile,
    /// The interval snapshot chain, in capture order. Callers may persist
    /// it (e.g. `Store::put_snapshot` with each element's predecessor as
    /// the parent) or drop it.
    pub snapshots: Vec<Snapshot>,
    /// Per-slice accounting, in slice order.
    pub slices: Vec<SliceReport>,
    /// Total serialized bytes of the snapshot chain.
    pub snapshot_bytes: u64,
    /// Worker threads actually used (capped at the slice count).
    pub workers: usize,
    /// Host wall nanoseconds of the profiling pass.
    pub profile_wall_ns: u64,
    /// Host wall nanoseconds of the fan-out simulation phase.
    pub simulate_wall_ns: u64,
    /// Host wall nanoseconds of the stitch.
    pub stitch_wall_ns: u64,
}

/// What one worker brings home from a slice.
struct SliceOut {
    report: SliceReport,
    stats: SimStats,
    runtime_ns: u64,
    fastpath: FastPathStats,
    /// `Some` only for the slice that ran to completion: the canonical
    /// replay summary and the final per-thread retired counts.
    fin: Option<(ReplaySummary, BTreeMap<u32, u64>)>,
}

fn replayer_for(sim: &Simulator) -> Replayer {
    let mut replayer = Replayer::new(ReplayConfig {
        machine: sim.machine_config(),
        ..ReplayConfig::default()
    });
    if let Some(tracer) = &sim.tracer {
        replayer = replayer.with_tracer(Arc::clone(tracer));
    }
    replayer
}

/// Runs the profiling pass: a functional replay under a [`BbvCollector`]
/// that pauses at every interval boundary to capture a snapshot. Returns
/// the chain, the BBV profile, and the profiling pass's summary.
fn profile_pass(
    pinball: &Pinball,
    sim: &Simulator,
    replayer: &Replayer,
    interval: u64,
) -> (Vec<Snapshot>, BbvProfile, ReplaySummary) {
    let mut span = elfie_trace::maybe_span(sim.tracer.as_ref(), "sim", "shard_profile");
    let mut session = replayer.session_with(pinball, BbvCollector::new(interval), None, |_| {});
    let mut snaps: Vec<Snapshot> = Vec::new();
    let mut boundary = interval;
    while session.run_until(Some(boundary)) == SessionStep::Paused {
        snaps.push(session.capture(snaps.len() as u64 + 1, interval));
        // A single scheduling turn can cross several boundaries when the
        // interval is finer than the thread quantum; skip to the next
        // multiple strictly ahead of where the pause actually landed.
        boundary = (session.global_icount() / interval + 1).saturating_mul(interval);
    }
    let (summary, mut m) = session.finish();
    let bbv = std::mem::replace(&mut m.obs, BbvCollector::new(interval)).finish();
    span.arg("snapshots", snaps.len() as u64);
    span.arg("icount", summary.global_icount);
    (snaps, bbv, summary)
}

/// Simulates one slice under a cold [`TimingObserver`] and packages the
/// per-slice statistics.
fn run_slice(
    pinball: &Pinball,
    sim: &Simulator,
    replayer: &Replayer,
    snaps: &[Snapshot],
    index: usize,
) -> SliceOut {
    let t0 = Instant::now();
    let mut span = elfie_trace::maybe_span(sim.tracer.as_ref(), "sim", "shard_slice");
    span.arg("slice", index as u64);
    let mut sess: ReplaySession<'_, TimingObserver> = match index.checked_sub(1) {
        None => replayer.session_with(pinball, sim.observer(), None, |_| {}),
        Some(prev) => replayer.resume_with(pinball, &snaps[prev], sim.observer(), None),
    };
    let start_icount = sess.global_icount();
    let step = match snaps.get(index) {
        Some(next) => sess.run_until(Some(next.meta.global_icount)),
        None => sess.run_until(None),
    };
    let (end_icount, stats, cycles, runtime_ns, mut fastpath, fin) = if step == SessionStep::Done {
        let (summary, m) = sess.finish();
        (
            summary.global_icount,
            m.obs.stats(),
            m.obs.cycles(),
            m.obs.runtime_ns(),
            m.fastpath_stats(),
            Some((summary, collect_icounts(&m))),
        )
    } else {
        let m = sess.machine();
        (
            m.global_icount(),
            m.obs.stats(),
            m.obs.cycles(),
            m.obs.runtime_ns(),
            m.fastpath_stats(),
            None,
        )
    };
    // A resumed machine's global icount (which `fastpath.insns` mirrors)
    // was restored to the snapshot's value; every other fast-path counter
    // starts at zero in the freshly-booted slice machine. Subtracting the
    // start makes the whole struct slice-local, so the stitch can sum it.
    fastpath.insns = fastpath.insns.saturating_sub(start_icount);
    let insns = stats.user_insns + stats.kernel_insns;
    span.arg("start", start_icount);
    span.arg("end", end_icount);
    span.arg("insns", insns);
    span.arg("cycles", cycles);
    SliceOut {
        report: SliceReport {
            index,
            start_icount,
            end_icount,
            insns,
            cycles,
            wall_ns: t0.elapsed().as_nanos() as u64,
        },
        stats,
        runtime_ns,
        fastpath,
        fin,
    }
}

/// Simulates a pinball by fanning interval slices out over a worker pool
/// and stitching the per-slice results deterministically.
///
/// See the module docs for the determinism contract. The stitch merges in
/// slice order: counters sum ([`SimStats::absorb`]), cycles and simulated
/// runtime sum across consecutive slices, the exit reason and per-thread
/// retired counts come from the final slice, and VM fast-path counters
/// accumulate across slices (the profiling pass's functional work is *not*
/// included in the stitched fast-path counters).
///
/// # Panics
/// Panics if no slice runs to completion, which cannot happen for a
/// snapshot chain produced by the internal profiling pass over the same
/// deterministic replay.
pub fn simulate_pinball_sharded(
    pinball: &Pinball,
    sim: &Simulator,
    cfg: &ShardConfig,
) -> ShardedOutcome {
    simulate_pinball_sharded_with_progress(pinball, sim, cfg, &|_| {})
}

/// [`simulate_pinball_sharded`] with a phase-progress callback.
///
/// `progress` is invoked from the calling thread for [`ShardPhase::
/// Profile`] and [`ShardPhase::Stitch`], and from worker threads for
/// each [`ShardPhase::Slice`] completion (hence the `Sync` bound). The
/// callback must be cheap and non-blocking: it runs inside the
/// simulation fan-out.
///
/// # Panics
/// Same contract as [`simulate_pinball_sharded`].
pub fn simulate_pinball_sharded_with_progress(
    pinball: &Pinball,
    sim: &Simulator,
    cfg: &ShardConfig,
    progress: &(dyn Fn(ShardPhase) + Sync),
) -> ShardedOutcome {
    let interval = cfg.interval.max(1);
    let mut span = elfie_trace::maybe_span(sim.tracer.as_ref(), "sim", "simulate_sharded");
    span.arg("shards", cfg.shards as u64);
    span.arg("interval", interval);
    let replayer = replayer_for(sim);

    // Phase 1: profiling pass (functional; emits the snapshot chain).
    progress(ShardPhase::Profile);
    let t0 = Instant::now();
    let (snaps, bbv, _profile_summary) = profile_pass(pinball, sim, &replayer, interval);
    let snapshot_bytes: u64 = snaps.iter().map(|s| s.to_bytes().len() as u64).sum();
    let profile_wall_ns = t0.elapsed().as_nanos() as u64;

    // Phase 2: fan the K + 1 slices out over the worker pool.
    let t1 = Instant::now();
    let nslices = snaps.len() + 1;
    let workers = cfg.shards.max(1).min(nslices);
    let finished = AtomicUsize::new(0);
    let slice_done = |_i: usize| {
        let done = finished.fetch_add(1, Ordering::Relaxed) as u64 + 1;
        progress(ShardPhase::Slice {
            done,
            total: nslices as u64,
        });
    };
    let outs: Vec<SliceOut> = if workers <= 1 {
        (0..nslices)
            .map(|i| {
                let out = run_slice(pinball, sim, &replayer, &snaps, i);
                slice_done(i);
                out
            })
            .collect()
    } else {
        let next = AtomicUsize::new(0);
        let slots: Vec<Mutex<Option<SliceOut>>> = (0..nslices).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= nslices {
                        break;
                    }
                    let out = run_slice(pinball, sim, &replayer, &snaps, i);
                    *slots[i].lock().unwrap() = Some(out);
                    slice_done(i);
                });
            }
        });
        slots
            .into_iter()
            .map(|s| s.into_inner().unwrap().expect("every slice ran"))
            .collect()
    };
    let simulate_wall_ns = t1.elapsed().as_nanos() as u64;

    // Phase 3: deterministic stitch, in slice order.
    progress(ShardPhase::Stitch);
    let t2 = Instant::now();
    let mut stitch_span = elfie_trace::maybe_span(sim.tracer.as_ref(), "sim", "shard_stitch");
    let mut stats = SimStats::default();
    let mut cycles: u64 = 0;
    let mut runtime_ns: u64 = 0;
    let mut fastpath = FastPathStats::default();
    let mut slices = Vec::with_capacity(nslices);
    let mut fin = None;
    for o in outs {
        stats.absorb(&o.stats);
        cycles = cycles.saturating_add(o.report.cycles);
        runtime_ns = runtime_ns.saturating_add(o.runtime_ns);
        fastpath.accumulate(o.fastpath);
        if o.fin.is_some() {
            fin = o.fin;
        }
        slices.push(o.report);
    }
    let (summary, machine_icounts) = fin.expect("final slice runs to completion");
    let exit = if summary.completed {
        ExitReason::AllExited(0)
    } else {
        ExitReason::Deadlock // divergence; detail in summary
    };
    let cycles = cycles.max(1);
    let insns = stats.user_insns + stats.kernel_insns;
    let outcome = SimOutcome {
        ipc: insns as f64 / cycles as f64,
        cpi: cycles as f64 / insns.max(1) as f64,
        stats,
        cycles,
        runtime_ns,
        exit,
        machine_icounts,
        fastpath,
    };
    let stitch_wall_ns = t2.elapsed().as_nanos() as u64;
    stitch_span.arg("slices", nslices as u64);
    stitch_span.arg("snapshot_bytes", snapshot_bytes);
    drop(stitch_span);
    span.arg("slices", nslices as u64);
    span.arg("cycles", outcome.cycles);
    span.arg("insns", insns);

    ShardedOutcome {
        outcome,
        summary,
        bbv,
        snapshots: snaps,
        slices,
        snapshot_bytes,
        workers,
        profile_wall_ns,
        simulate_wall_ns,
        stitch_wall_ns,
    }
}
