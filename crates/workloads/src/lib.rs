//! # elfie-workloads
//!
//! A synthetic benchmark suite standing in for SPEC CPU2006/CPU2017 in the
//! paper's case studies. Each workload is a guest-assembly program with a
//! deliberate performance personality (phase structure, memory behaviour,
//! branchiness, FP mix, file I/O, spin-synchronised threads), so that the
//! whole pipeline — BBV profiling, SimPoint selection, pinball capture,
//! ELFie generation, native measurement and simulation — exercises the
//! same code paths the paper's SPEC experiments exercise.
//!
//! * [`suite_int`] / [`suite_fp`] — single-threaded "rate"-style
//!   benchmarks with [`InputScale::Train`] and [`InputScale::Ref`] input
//!   sizes;
//! * [`suite_speed_mt`] — OpenMP-like "speed" workloads using `clone` +
//!   active-wait spin barriers (the paper's "active wait policy"),
//!   including one single-threaded member (like `657.xz_s.1` in Fig. 11);
//! * [`suite_2006`] — a 19-app list for the gem5 case study (Table V).

pub mod generators;

use elfie_isa::Program;
use elfie_vm::{Machine, Observer, Perm};

pub use generators::*;

/// Input size class, scaling dynamic instruction counts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InputScale {
    /// Tiny inputs for unit tests.
    Test,
    /// Train-like inputs (the paper's Section IV-A1 scale).
    Train,
    /// Ref-like inputs, several times longer (Section IV-A2).
    Ref,
}

impl InputScale {
    /// Multiplier applied to each workload's base iteration count.
    pub fn factor(self) -> u64 {
        match self {
            InputScale::Test => 1,
            InputScale::Train => 20,
            InputScale::Ref => 60,
        }
    }

    /// The stable lower-case name (`test`/`train`/`ref`) used on the CLI
    /// and in the serve protocol.
    pub fn name(self) -> &'static str {
        match self {
            InputScale::Test => "test",
            InputScale::Train => "train",
            InputScale::Ref => "ref",
        }
    }

    /// Parses the stable name.
    ///
    /// # Errors
    /// Describes the unknown name and lists the valid ones.
    pub fn parse(text: &str) -> Result<InputScale, String> {
        match text {
            "test" => Ok(InputScale::Test),
            "train" => Ok(InputScale::Train),
            "ref" => Ok(InputScale::Ref),
            other => Err(format!("unknown scale `{other}` (test|train|ref)")),
        }
    }
}

/// A runnable benchmark.
#[derive(Debug, Clone)]
pub struct Workload {
    /// Benchmark name (e.g. `gcc_like`).
    pub name: String,
    /// The assembled program.
    pub program: Program,
    /// Guest files staged before the run.
    pub files: Vec<(String, Vec<u8>)>,
    /// Additional RW ranges mapped before the run (large data arrays,
    /// thread stacks).
    pub data_maps: Vec<(u64, u64)>,
    /// Number of threads the workload creates (including the main one).
    pub nthreads: usize,
}

impl Workload {
    /// Stages files and mappings into a machine (call before `run`).
    pub fn setup<O: Observer>(&self, m: &mut Machine<O>) {
        for (path, data) in &self.files {
            m.kernel.fs.put(path, data.clone());
        }
        for &(start, end) in &self.data_maps {
            m.mem
                .map_range(start, end, Perm::RW)
                .expect("valid data map");
        }
    }

    /// Convenience: builds a machine with this workload loaded and staged.
    pub fn machine(&self, cfg: elfie_vm::MachineConfig) -> Machine {
        let mut m = Machine::new(cfg);
        m.load_program(&self.program);
        self.setup(&mut m);
        m
    }

    /// Stable hash over the name, program, staged files, data maps and
    /// thread count — everything [`Workload::setup`] and the program
    /// loader consume. The pipeline cache keys profiles and pinballs on
    /// this value.
    pub fn content_hash(&self) -> u64 {
        let mut h = elfie_isa::Fnv64::new()
            .str(&self.name)
            .u64(self.program.content_hash());
        h = h.u64(self.files.len() as u64);
        for (path, data) in &self.files {
            h = h.str(path).u64(data.len() as u64).bytes(data);
        }
        h = h.u64(self.data_maps.len() as u64);
        for &(start, end) in &self.data_maps {
            h = h.u64(start).u64(end);
        }
        h.u64(self.nthreads as u64).finish()
    }
}

/// The single-threaded integer suite.
pub fn suite_int(scale: InputScale) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        generators::perlbench_like(f),
        generators::gcc_like(f),
        generators::mcf_like(f),
        generators::omnetpp_like(f),
        generators::xalancbmk_like(f),
        generators::x264_like(f),
        generators::deepsjeng_like(f),
        generators::leela_like(f),
        generators::exchange2_like(f),
        generators::xz_like(f),
    ]
}

/// The single-threaded floating-point suite.
pub fn suite_fp(scale: InputScale) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        generators::lbm_like(f),
        generators::nab_like(f),
        generators::cam4_like(f),
    ]
}

/// OpenMP-style "speed" workloads: `threads`-way fork-join with
/// active-wait barriers, plus the single-threaded `xz_s_like` member.
pub fn suite_speed_mt(scale: InputScale, threads: usize) -> Vec<Workload> {
    let f = scale.factor();
    vec![
        generators::lbm_s_like(f, threads),
        generators::bwaves_s_like(f, threads),
        generators::imagick_s_like(f, threads),
        generators::sweep3d_s_like(f, threads),
        generators::xz_s_like(f),
    ]
}

/// Looks up a workload by name across every suite the CLI lists (int,
/// fp, and the 4-thread speed suite) at the given scale. `None` when no
/// suite member carries that name.
pub fn find_workload(name: &str, scale: InputScale) -> Option<Workload> {
    let mut all = suite_int(scale);
    all.extend(suite_fp(scale));
    all.extend(suite_speed_mt(scale, 4));
    all.into_iter().find(|w| w.name == name)
}

/// Nineteen applications for the gem5 Table V case study: the int and fp
/// suites plus parameter variants (mirroring how SPEC2006 shares kernels
/// across inputs).
pub fn suite_2006(scale: InputScale) -> Vec<Workload> {
    let f = scale.factor();
    let mut v = suite_int(scale);
    v.extend(suite_fp(scale));
    v.push(rename(generators::mcf_like(f * 2), "astar_like"));
    v.push(rename(generators::xz_like(f * 2), "bzip2_like"));
    v.push(rename(generators::deepsjeng_like(f * 2), "sjeng_like"));
    v.push(rename(generators::omnetpp_like(f * 2), "gobmk_like"));
    v.push(rename(generators::lbm_like(f * 2), "milc_like"));
    v.push(rename(generators::nab_like(f * 2), "namd_like"));
    debug_assert_eq!(v.len(), 19);
    v
}

fn rename(mut w: Workload, name: &str) -> Workload {
    w.name = name.to_string();
    w
}

#[cfg(test)]
mod tests {
    use super::*;
    use elfie_vm::{ExitReason, MachineConfig};

    fn runs_clean(w: &Workload) -> (u64, u64) {
        let mut m = w.machine(MachineConfig::default());
        let s = m.run(200_000_000);
        assert_eq!(
            s.reason,
            ExitReason::AllExited(0),
            "{} failed: {:?}",
            w.name,
            s.reason
        );
        (s.insns, m.threads.len() as u64)
    }

    #[test]
    fn int_suite_runs_at_test_scale() {
        for w in suite_int(InputScale::Test) {
            let (insns, threads) = runs_clean(&w);
            assert!(insns > 5_000, "{}: only {insns} instructions", w.name);
            assert_eq!(threads, 1, "{} is single-threaded", w.name);
        }
    }

    #[test]
    fn fp_suite_runs_at_test_scale() {
        for w in suite_fp(InputScale::Test) {
            let (insns, _) = runs_clean(&w);
            assert!(insns > 5_000, "{}: only {insns}", w.name);
        }
    }

    #[test]
    fn speed_suite_spawns_threads() {
        for w in suite_speed_mt(InputScale::Test, 4) {
            let mut m = w.machine(MachineConfig::default());
            let s = m.run(500_000_000);
            assert_eq!(
                s.reason,
                ExitReason::AllExited(0),
                "{}: {:?}",
                w.name,
                s.reason
            );
            if w.name == "xz_s_like" {
                assert_eq!(m.threads.len(), 1, "xz_s is the single-threaded member");
            } else {
                assert_eq!(
                    m.threads.len(),
                    4,
                    "{} spawned {} threads",
                    w.name,
                    m.threads.len()
                );
                for t in &m.threads {
                    assert!(t.icount > 100, "{}: thread {} idle", w.name, t.tid);
                }
            }
        }
    }

    #[test]
    fn scales_increase_instruction_counts() {
        let small = {
            let w = generators::mcf_like(InputScale::Test.factor());
            runs_clean(&w).0
        };
        let train = {
            let w = generators::mcf_like(InputScale::Train.factor());
            runs_clean(&w).0
        };
        assert!(train > 5 * small, "train {train} vs test {small}");
    }

    #[test]
    fn suite_2006_has_19_members_with_unique_names() {
        let v = suite_2006(InputScale::Test);
        assert_eq!(v.len(), 19);
        let mut names: Vec<&str> = v.iter().map(|w| w.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 19, "names unique");
    }

    #[test]
    fn x264_like_reads_its_input_file() {
        let w = generators::x264_like(1);
        assert!(!w.files.is_empty(), "x264 has an input file");
        let mut m = w.machine(MachineConfig::default());
        let s = m.run(100_000_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let w = generators::gcc_like(1);
        let run = |seed| {
            let mut m = w.machine(MachineConfig {
                seed,
                ..MachineConfig::default()
            });
            let s = m.run(100_000_000);
            s.insns
        };
        assert_eq!(run(1), run(1));
    }
}
