//! The individual benchmark generators.
//!
//! Every generator returns a [`Workload`] whose guest-assembly program has
//! a distinct micro-architectural personality, named after the SPEC
//! program whose behaviour it caricatures. `f` scales dynamic instruction
//! counts (see [`crate::InputScale`]).

use crate::Workload;
use elfie_isa::assemble;

/// Base address of each workload's large data array.
pub const ARRAY_BASE: u64 = 0x3000_0000;
/// Base address of the worker-thread stacks used by the MT suite.
pub const MT_STACK_BASE: u64 = 0x7100_0000_0000;
/// Stack bytes per worker thread.
pub const MT_STACK_SIZE: u64 = 1 << 16;

fn build(
    name: &str,
    asm: String,
    files: Vec<(String, Vec<u8>)>,
    data_maps: Vec<(u64, u64)>,
    nthreads: usize,
) -> Workload {
    let program =
        assemble(&asm).unwrap_or_else(|e| panic!("workload `{name}` failed to assemble: {e}"));
    Workload {
        name: name.to_string(),
        program,
        files,
        data_maps,
        nthreads,
    }
}

const EXIT: &str = "
    mov rax, 231
    mov rdi, 0
    syscall
";

/// String/byte processing with branchy scans (perlbench-like).
pub fn perlbench_like(f: u64) -> Workload {
    let gen = 8_000 * f;
    let scans = 100; // fixed: total work scales linearly with the input
    let asm = format!(
        r#"
        .org 0x400000
        start:
            ; Phase 1: fill a byte buffer with an LCG stream.
            mov rbx, {ARRAY_BASE:#x}
            mov rax, 12345
            mov r10, 6364136223846793005
            mov r11, 1442695040888963407
            mov rcx, {gen}
        fill:
            imul rax, r10
            add rax, r11
            mov rdx, rax
            shr rdx, 33
            movb [rbx], rdx
            add rbx, 1
            sub rcx, 1
            cmp rcx, 0
            jne fill
            ; Phase 2: repeated scans counting "vowel-ish" bytes.
            mov r15, {scans}
        scan_outer:
            mov rbx, {ARRAY_BASE:#x}
            mov rcx, {gen}
            mov r8, 0
        scan:
            movb rdx, [rbx]
            and rdx, 31
            cmp rdx, 5
            jae not_vowel
            add r8, 1
            cmp rdx, 2
            jne not_vowel
            add r8, 2
        not_vowel:
            add rbx, 1
            sub rcx, 1
            cmp rcx, 0
            jne scan
            sub r15, 1
            cmp r15, 0
            jne scan_outer
            {EXIT}
        "#
    );
    build(
        "perlbench_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + gen + 4096)],
        1,
    )
}

/// Multi-phase compiler-like workload: parse (branchy bytes), optimise
/// (pointer chase over a working set it built itself), codegen (store
/// streams). Repeats with varying phase lengths, which makes it hard to
/// represent with few simulation regions and sensitive to warm-up — the
/// gcc behaviour of the paper's Fig. 9 / Table II.
pub fn gcc_like(f: u64) -> Workload {
    let units = 6 * f; // "functions compiled"
    let parse = 4_000;
    let nodes = 24_000u64; // pointer-chase nodes (8 bytes each)
    let stores = 3_000;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov r15, {units}
            mov r14, 99               ; per-unit variation seed
        unit:
            ; --- parse phase: branchy byte classification ---
            mov rbx, {ARRAY_BASE:#x}
            mov rcx, {parse}
            mov rax, r14
            mov r10, 2862933555777941757
            mov r11, 3037000493
        parse:
            imul rax, r10
            add rax, r11
            mov rdx, rax
            shr rdx, 40
            movb [rbx], rdx
            and rdx, 7
            cmp rdx, 3
            jb tok_small
            cmp rdx, 6
            jb tok_mid
            add r9, 2
            jmp tok_done
        tok_small:
            add r9, 1
            jmp tok_done
        tok_mid:
            add r9, 3
        tok_done:
            add rbx, 1
            sub rcx, 1
            cmp rcx, 0
            jne parse
            ; --- build IR: next[i] = (i * 9301 + unit) % nodes ---
            mov rbx, {chase_base:#x}
            mov rcx, 0
        build:
            mov rax, rcx
            imul rax, 9301
            add rax, r14
            mov rdx, {nodes}
            urem rax, rdx
            shl rax, 3
            mov [rbx + rcx*8], rax
            add rcx, 1
            cmp rcx, {nodes}
            jne build
            ; --- optimise phase: chase the list ---
            mov rcx, {chase_iters}
            mov rax, 0
        chase:
            mov rbx, {chase_base:#x}
            add rbx, rax
            mov rax, [rbx]
            sub rcx, 1
            cmp rcx, 0
            jne chase
            ; --- codegen phase: store stream ---
            mov rbx, {code_base:#x}
            mov rcx, {stores}
        emit:
            mov [rbx], rcx
            mov [rbx + 8], r9
            add rbx, 16
            sub rcx, 1
            cmp rcx, 0
            jne emit
            add r14, 17
            sub r15, 1
            cmp r15, 0
            jne unit
            {EXIT}
        "#,
        chase_base = ARRAY_BASE + 0x10_0000,
        chase_iters = 12_000,
        code_base = ARRAY_BASE + 0x40_0000,
    );
    build(
        "gcc_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + 0x50_0000)],
        1,
    )
}

/// Pointer-chasing, memory-latency-bound workload (mcf-like).
pub fn mcf_like(f: u64) -> Workload {
    let nodes = 60_000u64;
    let iters = 25_000 * f;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            ; next[i] = ((i * 40503 + 7) % nodes) * 8
            mov rbx, {ARRAY_BASE:#x}
            mov rcx, 0
        build:
            mov rax, rcx
            imul rax, 40503
            add rax, 7
            mov rdx, {nodes}
            urem rax, rdx
            shl rax, 3
            mov [rbx + rcx*8], rax
            add rcx, 1
            cmp rcx, {nodes}
            jne build
            ; chase with a running sum
            mov rcx, {iters}
            mov rax, 0
            mov r8, 0
        chase:
            mov rbx, {ARRAY_BASE:#x}
            add rbx, rax
            mov rax, [rbx]
            add r8, rax
            sub rcx, 1
            cmp rcx, 0
            jne chase
            {EXIT}
        "#
    );
    build(
        "mcf_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + nodes * 8 + 4096)],
        1,
    )
}

/// Discrete-event-ish circular queue churn (omnetpp-like).
pub fn omnetpp_like(f: u64) -> Workload {
    let events = 40_000 * f;
    let qsize = 4096u64;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov r12, 0            ; head
            mov r13, 0            ; tail
            mov r14, 12345        ; rng
            mov r10, 2862933555777941757
            mov rcx, {events}
        event:
            imul r14, r10
            add r14, 1013904223
            mov rax, r14
            shr rax, 35
            and rax, 1
            cmp rax, 0
            je pop
            ; push at tail
            mov rbx, {ARRAY_BASE:#x}
            mov rax, r13
            and rax, {qmask}
            mov [rbx + rax*8], r14
            add r13, 1
            jmp next
        pop:
            cmp r12, r13
            je next               ; empty
            mov rbx, {ARRAY_BASE:#x}
            mov rax, r12
            and rax, {qmask}
            mov rdx, [rbx + rax*8]
            add r9, rdx
            add r12, 1
        next:
            sub rcx, 1
            cmp rcx, 0
            jne event
            {EXIT}
        "#,
        qmask = qsize - 1,
    );
    build(
        "omnetpp_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + qsize * 8 + 4096)],
        1,
    )
}

/// Branchy tree-walk (xalancbmk-like).
pub fn xalancbmk_like(f: u64) -> Workload {
    let walks = 20_000 * f;
    let depth = 14u64;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov r14, 777
            mov r10, 6364136223846793005
            mov r11, 1442695040888963407
            mov rcx, {walks}
        walk:
            imul r14, r10
            add r14, r11
            mov rax, r14
            mov rbx, 1            ; node index (heap layout)
            mov rdx, {depth}
        descend:
            mov r8, rax
            and r8, 1
            shr rax, 1
            shl rbx, 1
            cmp r8, 0
            je go_left
            add rbx, 1
        go_left:
            mov rsi, {ARRAY_BASE:#x}
            mov rdi, [rsi + rbx*8]
            add r9, rdi
            sub rdx, 1
            cmp rdx, 0
            jne descend
            sub rcx, 1
            cmp rcx, 0
            jne walk
            {EXIT}
        "#
    );
    let tree_bytes = (1u64 << 15) * 8 + 4096;
    build(
        "xalancbmk_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + tree_bytes)],
        1,
    )
}

/// Video-encoder-like: reads a frame file, then block transforms with a
/// periodic `gettimeofday` (rate control) — the workload shape of the
/// paper's Table IV single-region study.
pub fn x264_like(f: u64) -> Workload {
    let frames = 4 * f;
    let blocks = 6_000u64;
    let frame_bytes = 16 * 1024u64;
    let input: Vec<u8> = (0..frame_bytes * 2).map(|i| (i * 31 % 251) as u8).collect();
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov rax, 2            ; open("/video.raw")
            mov rdi, path
            mov rsi, 0
            syscall
            mov r12, rax
            mov r15, {frames}
        frame:
            ; read one frame into the array
            mov rax, 0
            mov rdi, r12
            mov rsi, {ARRAY_BASE:#x}
            mov rdx, {frame_bytes}
            syscall
            mov rax, 8            ; lseek back to 0 (loop the input)
            mov rdi, r12
            mov rsi, 0
            mov rdx, 0
            syscall
            ; transform: 16-byte "blocks", sum of abs-diff-ish work,
            ; output rotating through a 2 MiB reconstruction buffer
            mov rbx, {ARRAY_BASE:#x}
            add r13, 0x4000
            mov rax, 0x1fffff
            and r13, rax
            mov rcx, {blocks}
        block:
            mov rax, [rbx]
            mov rdx, [rbx + 8]
            sub rax, rdx
            mov r8, rax
            sar r8, 63
            xor rax, r8
            sub rax, r8           ; |a-b|
            add r9, rax
            mov rsi, {recon:#x}
            add rsi, r13
            mov [rsi + rcx*8], rax
            add rbx, 16
            and rbx, 0x3fffffff
            sub rcx, 1
            cmp rcx, 0
            jne block
            ; rate control timestamp
            mov rax, 96
            mov rdi, tv
            mov rsi, 0
            syscall
            sub r15, 1
            cmp r15, 0
            jne frame
            {EXIT}
        path: .asciz "/video.raw"
        .align 8
        tv: .zero 16
        "#,
        recon = ARRAY_BASE + 0x10_0000,
    );
    build(
        "x264_like",
        asm,
        vec![("/video.raw".to_string(), input)],
        vec![(ARRAY_BASE, ARRAY_BASE + 0x40_0000)],
        1,
    )
}

/// Branch-heavy game-tree-like integer workload (deepsjeng-like).
pub fn deepsjeng_like(f: u64) -> Workload {
    let iters = 60_000 * f;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov r14, 0x9e3779b97f4a7c15
            mov rcx, {iters}
            mov r8, 0
        search:
            mov rax, r14
            shr rax, 7
            xor r14, rax
            mov rax, r14
            shl rax, 9
            xor r14, rax
            mov rax, r14
            and rax, 15
            cmp rax, 4
            jb prune
            cmp rax, 9
            jb expand
            add r8, 3
            jmp cont
        prune:
            sub r8, 1
            jmp cont
        expand:
            add r8, 1
            mov rdx, r14
            and rdx, 63
            shl rdx, 1
            add r8, rdx
        cont:
            sub rcx, 1
            cmp rcx, 0
            jne search
            {EXIT}
        "#
    );
    build("deepsjeng_like", asm, vec![], vec![], 1)
}

/// Monte-Carlo playout mix (leela-like): random array updates + branches.
pub fn leela_like(f: u64) -> Workload {
    let playouts = 30_000 * f;
    let board = 1 << 14;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov r14, 0x2545f4914f6cdd1d
            mov r10, 6364136223846793005
            mov rcx, {playouts}
        playout:
            imul r14, r10
            add r14, 1
            mov rax, r14
            shr rax, 20
            and rax, {mask:#x}
            mov rbx, {ARRAY_BASE:#x}
            mov rdx, [rbx + rax*8]
            add rdx, 1
            mov [rbx + rax*8], rdx
            and rdx, 3
            cmp rdx, 0
            jne no_capture
            add r9, 5
        no_capture:
            sub rcx, 1
            cmp rcx, 0
            jne playout
            {EXIT}
        "#,
        mask = board - 1,
    );
    build(
        "leela_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + board * 8 + 4096)],
        1,
    )
}

/// Pure-ALU nested loops with high IPC (exchange2-like).
pub fn exchange2_like(f: u64) -> Workload {
    let outer = 300 * f;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov r15, {outer}
        outer:
            mov rcx, 200
            mov rax, 1
            mov rbx, 2
            mov rdx, 3
        inner:
            add rax, rbx
            xor rbx, rdx
            shl rdx, 1
            add rdx, rax
            and rdx, 0xffff
            sub rcx, 1
            cmp rcx, 0
            jne inner
            add r9, rax
            sub r15, 1
            cmp r15, 0
            jne outer
            {EXIT}
        "#
    );
    build("exchange2_like", asm, vec![], vec![], 1)
}

/// Compression-like byte histogram + match loops (xz-like).
pub fn xz_like(f: u64) -> Workload {
    let bytes = 20_000 * f;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            ; generate input
            mov rbx, {ARRAY_BASE:#x}
            mov rax, 88172645463325252
            mov rcx, {bytes}
        gen:
            mov rdx, rax
            shl rdx, 13
            xor rax, rdx
            mov rdx, rax
            shr rdx, 7
            xor rax, rdx
            movb [rbx], rax
            add rbx, 1
            sub rcx, 1
            cmp rcx, 0
            jne gen
            ; histogram
            mov rbx, {ARRAY_BASE:#x}
            mov rcx, {bytes}
        hist:
            movb rax, [rbx]
            mov rsi, {hist_base:#x}
            mov rdx, [rsi + rax*8]
            add rdx, 1
            mov [rsi + rax*8], rdx
            add rbx, 1
            sub rcx, 1
            cmp rcx, 0
            jne hist
            ; run-length matcher
            mov rbx, {ARRAY_BASE:#x}
            mov rcx, {match_iters}
            mov r8, 0
        match:
            movb rax, [rbx]
            movb rdx, [rbx + 1]
            cmp rax, rdx
            jne nomatch
            add r8, 1
        nomatch:
            add rbx, 1
            sub rcx, 1
            cmp rcx, 0
            jne match
            {EXIT}
        "#,
        hist_base = ARRAY_BASE + 0x10_0000,
        match_iters = bytes - 2,
    );
    build(
        "xz_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + 0x10_2000)],
        1,
    )
}

/// FP stencil sweep (lbm-like): memory + floating point.
pub fn lbm_like(f: u64) -> Workload {
    let cells = 30_000u64;
    let sweeps = 8 * f;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            ; init grid with converted indices
            mov rbx, {ARRAY_BASE:#x}
            mov rcx, 0
        init:
            cvtsi2sd xmm0, rcx
            movsd [rbx + rcx*8], xmm0
            add rcx, 1
            cmp rcx, {cells}
            jne init
            mov r15, {sweeps}
            ; 0.25 constant
            mov rax, 1
            cvtsi2sd xmm7, rax
            mov rax, 4
            cvtsi2sd xmm6, rax
            divsd xmm7, xmm6
        sweep:
            mov rcx, 1
        cell:
            mov rbx, {ARRAY_BASE:#x}
            movsd xmm0, [rbx + rcx*8 - 8]
            movsd xmm1, [rbx + rcx*8 + 8]
            addsd xmm0, xmm1
            movsd xmm2, [rbx + rcx*8]
            addsd xmm0, xmm2
            addsd xmm0, xmm2
            mulsd xmm0, xmm7
            movsd [rbx + rcx*8], xmm0
            add rcx, 1
            cmp rcx, {last}
            jne cell
            sub r15, 1
            cmp r15, 0
            jne sweep
            {EXIT}
        "#,
        last = cells - 1,
    );
    build(
        "lbm_like",
        asm,
        vec![],
        vec![(ARRAY_BASE, ARRAY_BASE + cells * 8 + 4096)],
        1,
    )
}

/// FP force-field mix with sqrt/div (nab-like).
pub fn nab_like(f: u64) -> Workload {
    let pairs = 15_000 * f;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov rcx, {pairs}
            mov rax, 3
            cvtsi2sd xmm1, rax     ; dx
            mov rax, 5
            cvtsi2sd xmm2, rax     ; dy
            mov rax, 1
            cvtsi2sd xmm5, rax     ; acc
        pair:
            movsd xmm0, xmm1
            mulsd xmm0, xmm1
            movsd xmm3, xmm2
            mulsd xmm3, xmm2
            addsd xmm0, xmm3       ; r2
            sqrtsd xmm4, xmm0      ; r
            addsd xmm4, xmm5
            movsd xmm3, xmm5
            divsd xmm3, xmm4       ; 1/(r+acc)
            addsd xmm5, xmm3
            mulsd xmm1, xmm3
            addsd xmm1, xmm5
            sub rcx, 1
            cmp rcx, 0
            jne pair
            cvttsd2si rax, xmm5
            {EXIT}
        "#
    );
    build("nab_like", asm, vec![], vec![], 1)
}

/// FP with reductions and data-dependent branches (cam4-like).
pub fn cam4_like(f: u64) -> Workload {
    let iters = 12_000 * f;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov rcx, {iters}
            mov rax, 2
            cvtsi2sd xmm0, rax
            mov rax, 7
            cvtsi2sd xmm1, rax
            mov r14, 41
            mov r10, 2862933555777941757
            mov r11, 3037000493
        step:
            imul r14, r10
            add r14, r11
            mov rax, r14
            shr rax, 33
            and rax, 1023
            cvtsi2sd xmm2, rax
            comisd xmm2, xmm1
            jb small_branch
            addsd xmm0, xmm2
            mulsd xmm0, xmm1
            divsd xmm0, xmm2
            jmp step_done
        small_branch:
            subsd xmm0, xmm2
            maxsd xmm0, xmm1
        step_done:
            sub rcx, 1
            cmp rcx, 0
            jne step
            {EXIT}
        "#
    );
    build("cam4_like", asm, vec![], vec![], 1)
}

// ---------------------------------------------------------------------------
// Multi-threaded "speed" suite
// ---------------------------------------------------------------------------

/// Builds an OpenMP-style fork-join workload: `threads` workers, `reps`
/// parallel regions separated by active-wait (spinning) barriers, each
/// worker executing `body` over its own chunk of the shared array.
///
/// Registers available to `body`: `r12` = worker index, `rbx` = the
/// worker's chunk base address. The body must preserve `r12,r13,r14,r15`.
fn mt_workload(name: &str, threads: usize, reps: u64, chunk_bytes: u64, body: &str) -> Workload {
    assert!(threads >= 1);
    let t = threads as u64;
    let asm = format!(
        r#"
        .org 0x400000
        start:
            mov r12, 0            ; my worker index (main = 0)
            mov rcx, 1
        clone_loop:
            cmp rcx, {t}
            je work_start
            mov rsi, rcx
            shl rsi, 16
            mov rax, {stack_base:#x}
            add rsi, rax          ; child stack top for worker rcx
            add rsi, {stack_used:#x}
            mov rax, 56
            mov rdi, 0
            syscall
            cmp rax, 0
            jne cloned
            mov r12, rcx          ; child: adopt index
            jmp work_start
        cloned:
            add rcx, 1
            jmp clone_loop
        work_start:
            mov r15, {t}          ; thread count
            mov r13, 0            ; barrier target accumulator
            mov r14, {reps}
        region:
            ; chunk base = ARRAY + r12 * chunk
            mov rbx, r12
            mov rax, {chunk_bytes}
            imul rbx, rax
            mov rax, {array:#x}
            add rbx, rax
            {body}
            ; ---- active-wait barrier (OpenMP busy waiting) ----
            add r13, r15
            mov rdx, 1
            mov rsi, barrier_word
            xadd [rsi], rdx
        spin:
            mov rdx, [barrier_word]
            cmp rdx, r13
            jb spin
        rep_done:                 ; end-of-region instruction outside the spin loop
            sub r14, 1
            cmp r14, 0
            jne region
            ; workers exit; main exits the process
            cmp r12, 0
            je main_exit
            mov rax, 60
            mov rdi, 0
            syscall
        main_exit:
        wait_all:
            mov rax, 10003        ; live-thread count
            syscall
            cmp rax, 1
            jne wait_all
            {EXIT}
        .org 0x600000
        barrier_word: .quad 0
        "#,
        stack_base = MT_STACK_BASE,
        stack_used = MT_STACK_SIZE - 256,
        array = ARRAY_BASE,
    );
    let stacks_end = MT_STACK_BASE + t * MT_STACK_SIZE + 4096;
    build(
        name,
        asm,
        vec![],
        vec![
            (ARRAY_BASE, ARRAY_BASE + t * chunk_bytes + 4096),
            (MT_STACK_BASE, stacks_end),
        ],
        threads,
    )
}

/// MT FP stencil (lbm_s-like).
pub fn lbm_s_like(f: u64, threads: usize) -> Workload {
    let body = format!(
        r#"
            mov rcx, {iters}
            mov rax, 3
            cvtsi2sd xmm1, rax
        lbm_body:
            movsd xmm0, [rbx]
            addsd xmm0, xmm1
            mulsd xmm0, xmm1
            movsd [rbx], xmm0
            movsd xmm2, [rbx + 8]
            addsd xmm2, xmm0
            movsd [rbx + 8], xmm2
            add rbx, 16
            sub rcx, 1
            cmp rcx, 0
            jne lbm_body
        "#,
        iters = 2_000,
    );
    mt_workload("lbm_s_like", threads, 3 * f, 64 * 1024, &body)
}

/// MT streaming triad (bwaves_s-like).
pub fn bwaves_s_like(f: u64, threads: usize) -> Workload {
    let body = format!(
        r#"
            mov rcx, {iters}
        bw_body:
            mov rax, [rbx]
            mov rdx, [rbx + 8]
            imul rdx, 3
            add rax, rdx
            mov [rbx + 16], rax
            add rbx, 8
            sub rcx, 1
            cmp rcx, 0
            jne bw_body
        "#,
        iters = 3_000,
    );
    mt_workload("bwaves_s_like", threads, 3 * f, 64 * 1024, &body)
}

/// MT byte blur (imagick_s-like).
pub fn imagick_s_like(f: u64, threads: usize) -> Workload {
    let body = format!(
        r#"
            mov rcx, {iters}
        im_body:
            movb rax, [rbx]
            movb rdx, [rbx + 1]
            add rax, rdx
            movb rdx, [rbx + 2]
            add rax, rdx
            udiv rax, r15         ; divide by live value to vary latency
            movb [rbx + 1], rax
            add rbx, 1
            sub rcx, 1
            cmp rcx, 0
            jne im_body
        "#,
        iters = 4_000,
    );
    mt_workload("imagick_s_like", threads, 3 * f, 64 * 1024, &body)
}

/// MT wavefront-ish accumulation (sweep3d-like, the paper's roms/sweep
/// stand-in).
pub fn sweep3d_s_like(f: u64, threads: usize) -> Workload {
    let body = format!(
        r#"
            mov rcx, {iters}
            mov rax, 0
        sw_body:
            mov rdx, [rbx]
            add rax, rdx
            mov [rbx], rax
            add rbx, 64           ; line stride
            sub rcx, 1
            cmp rcx, 0
            jne sw_body
        "#,
        iters = 800,
    );
    mt_workload("sweep3d_s_like", threads, 4 * f, 64 * 1024, &body)
}

/// The single-threaded member of the speed suite (like `657.xz_s.1`).
pub fn xz_s_like(f: u64) -> Workload {
    let mut w = xz_like(f);
    w.name = "xz_s_like".into();
    w
}
