//! Differential property tests for copy-on-write guest memory.
//!
//! Booting a machine from shared, arena-style page payloads
//! ([`Memory::map_shared_page`]) is a pure materialization optimisation:
//! execution must be **bit-identical** to booting from deep-copied pages.
//! These tests enforce that by checkpointing a program's initial memory
//! image once, booting two machines from it — one sharing the payloads,
//! one copying every byte — and comparing everything observable:
//!
//! * the full observer event stream (instructions, memory accesses,
//!   syscalls, markers, thread lifecycle),
//! * the [`RunSummary`] (exit reason, retired instructions, cycles),
//! * final register files of every thread,
//! * the complete memory image (page bases, permissions, bytes),
//! * kernel stdout.
//!
//! Self-modifying code is the sharpest case: a shared *code* page must
//! privatise on the patch write, evict the stale decoded block, and keep
//! the donor payload byte-identical — all while matching the deep-copy
//! run event for event.

use elfie_isa::test_strategies::arb_insn;
use elfie_isa::{assemble, encode, Insn, MarkerKind, Program, Reg, RegFile};
use elfie_vm::{
    ExitReason, FastPathStats, Machine, MachineConfig, Observer, PageData, Perm, RunSummary,
};
use proptest::prelude::*;
use std::sync::Arc;

/// One observer callback, recorded verbatim.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Insn(u32, u64, Insn, usize),
    Read(u32, u64, u64),
    Write(u32, u64, u64),
    Sys(u32, u64, [u64; 6]),
    SysRet(u32, u64, u64, usize),
    Marker(u32, MarkerKind, u32),
    Start(u32, u32),
    Exit(u32, i32),
}

/// Records every observer callback in order.
#[derive(Debug, Default)]
struct RecObs(Vec<Ev>);

impl Observer for RecObs {
    fn on_insn(&mut self, tid: u32, rip: u64, insn: &Insn, len: usize) {
        self.0.push(Ev::Insn(tid, rip, *insn, len));
    }
    fn on_mem_read(&mut self, tid: u32, addr: u64, size: u64) {
        self.0.push(Ev::Read(tid, addr, size));
    }
    fn on_mem_write(&mut self, tid: u32, addr: u64, size: u64) {
        self.0.push(Ev::Write(tid, addr, size));
    }
    fn on_syscall(&mut self, tid: u32, nr: u64, args: &[u64; 6]) {
        self.0.push(Ev::Sys(tid, nr, *args));
    }
    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: u64, writes: &[(u64, Vec<u8>)]) {
        self.0.push(Ev::SysRet(tid, nr, ret, writes.len()));
    }
    fn on_marker(&mut self, tid: u32, kind: MarkerKind, tag: u32) {
        self.0.push(Ev::Marker(tid, kind, tag));
    }
    fn on_thread_start(&mut self, parent: u32, child: u32) {
        self.0.push(Ev::Start(parent, child));
    }
    fn on_thread_exit(&mut self, tid: u32, code: i32) {
        self.0.push(Ev::Exit(tid, code));
    }
}

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct Outcome {
    summary: RunSummary,
    events: Vec<Ev>,
    regs: Vec<RegFile>,
    mem: Vec<(u64, Perm, Vec<u8>)>,
    stdout: Vec<u8>,
}

/// A frozen initial machine state: page snapshot plus thread registers.
struct Checkpoint {
    pages: Vec<(u64, Perm, PageData)>,
    threads: Vec<RegFile>,
}

/// Runs `setup` on a scratch machine and freezes the result. The payloads
/// are `Arc`s, so booting from the checkpoint can share or copy them.
fn checkpoint(setup: &dyn Fn(&mut Machine)) -> Checkpoint {
    let mut m = Machine::new(MachineConfig::default());
    setup(&mut m);
    Checkpoint {
        pages: m
            .mem
            .pages()
            .map(|(base, perm, data)| (base, perm, Arc::new(*data) as PageData))
            .collect(),
        threads: m.threads.iter().map(|t| t.regs.clone()).collect(),
    }
}

/// Boots a machine from `cp` — sharing the payloads or deep-copying them
/// — runs it, and returns the observable outcome.
fn run_from(cp: &Checkpoint, fuel: u64, share: bool) -> (Outcome, FastPathStats) {
    let mut m = Machine::with_observer(MachineConfig::default(), RecObs::default());
    for (base, perm, data) in &cp.pages {
        if share {
            m.mem.map_shared_page(*base, *perm, Arc::clone(data));
        } else {
            m.mem.map_page(*base, *perm);
            m.mem.write_bytes_unchecked(*base, &data[..]).unwrap();
        }
    }
    for regs in &cp.threads {
        m.add_thread(regs.clone());
    }
    let summary = m.run(fuel);
    let stats = m.fastpath_stats();
    let outcome = Outcome {
        summary,
        events: std::mem::take(&mut m.obs.0),
        regs: m.threads.iter().map(|t| t.regs.clone()).collect(),
        mem: m
            .mem
            .pages()
            .map(|(base, perm, data)| (base, perm, data.to_vec()))
            .collect(),
        stdout: m.kernel.stdout.clone(),
    };
    (outcome, stats)
}

/// Boots `setup`'s machine state both ways and asserts the executions are
/// indistinguishable. Also verifies the donor payloads came through the
/// run unmodified (CoW never writes back into the checkpoint). Returns
/// the shared-boot run for further checks.
fn assert_identical(setup: &dyn Fn(&mut Machine), fuel: u64) -> (Outcome, FastPathStats) {
    let cp = checkpoint(setup);
    let before: Vec<Vec<u8>> = cp.pages.iter().map(|(_, _, d)| d.to_vec()).collect();
    let (shared, stats) = run_from(&cp, fuel, true);
    let (deep, deep_stats) = run_from(&cp, fuel, false);
    assert_eq!(
        deep_stats.mat.shared_pages, 0,
        "deep boot must not share pages"
    );
    assert_eq!(
        stats.mat.shared_pages,
        cp.pages.len() as u64,
        "shared boot must share every checkpoint page"
    );
    assert_eq!(shared.summary, deep.summary, "run summary diverged");
    assert_eq!(shared.regs, deep.regs, "final registers diverged");
    assert_eq!(shared.stdout, deep.stdout, "stdout diverged");
    for (i, (a, b)) in shared.events.iter().zip(deep.events.iter()).enumerate() {
        assert_eq!(a, b, "event {i} diverged (shared vs deep-copy boot)");
    }
    assert_eq!(
        shared.events.len(),
        deep.events.len(),
        "event count diverged"
    );
    assert_eq!(shared.mem, deep.mem, "memory image diverged");
    for ((_, _, d), b) in cp.pages.iter().zip(&before) {
        assert_eq!(&d[..], &b[..], "a shared payload was mutated in place");
    }
    (shared, stats)
}

const CODE_BASE: u64 = 0x1000;
const ARENA_BASE: u64 = 0x20000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random instruction soup over a checkpointed image: code page plus
    /// a data arena, all boot-shared. Includes faulting and undecodable
    /// tails — divergence handling must match too.
    #[test]
    fn straight_line_soup_is_boot_mode_invariant(
        insns in proptest::collection::vec(arb_insn(), 1..32),
    ) {
        let mut code = Vec::new();
        for i in &insns {
            code.extend(encode(i));
        }
        let setup = move |m: &mut Machine| {
            m.mem.map_range(CODE_BASE, 0x5000, Perm::RWX).unwrap();
            m.mem
                .map_range(ARENA_BASE, ARENA_BASE + 0x20000, Perm::RW)
                .unwrap();
            m.mem.write_bytes_unchecked(CODE_BASE, &code).unwrap();
            let mut regs = RegFile::new();
            regs.rip = CODE_BASE;
            for r in 0..16u8 {
                let reg = Reg::from_index(r).unwrap();
                regs.write(reg, ARENA_BASE + 0x10000 + (r as u64) * 64);
            }
            regs.write(Reg::Rcx, 4); // bound rep movs
            regs.write(Reg::Rsp, ARENA_BASE + 0x1f000);
            m.add_thread(regs);
        };
        assert_identical(&setup, 4_000);
    }
}

fn loaded(prog: Program) -> impl Fn(&mut Machine) {
    move |m: &mut Machine| m.load_program(&prog)
}

/// A store-heavy loop: writes privatise exactly the touched pages, reads
/// elsewhere keep sharing, and the deep-copy run still matches.
#[test]
fn writes_break_cow_only_on_touched_pages() {
    let prog = assemble(
        r#"
        .org 0x1000
        start:
            mov rcx, 200
            mov r15, 0x20000
        loop:
            mov [r15], rcx      ; repeatedly dirty ONE data page
            mov rax, [r15 + 8]
            sub rcx, 1
            cmp rcx, 0
            jne loop
            mov rax, 60
            mov rdi, 0
            syscall
        "#,
    )
    .expect("assembles");
    let setup = move |m: &mut Machine| {
        m.load_program(&prog);
        m.mem
            .map_range(0x20000, 0x20000 + 0x4000, Perm::RW)
            .unwrap();
    };
    let (outcome, stats) = assert_identical(&setup, 10_000);
    assert_eq!(outcome.summary.reason, ExitReason::AllExited(0));
    // One data page is written; the other three data pages and the code
    // pages are only ever read or fetched, so they never privatise.
    assert_eq!(stats.mat.cow_breaks, 1, "exactly one page privatised");
    assert!(
        stats.mat.peak_owned_bytes < stats.mat.shared_pages * elfie_isa::PAGE_SIZE,
        "shared boot must stay below one-copy-per-page residency"
    );
}

/// Self-modifying code on a *shared* code page: the patch write must
/// privatise the frame, evict the already-decoded block, execute the new
/// bytes — and match the deep-copy boot exactly.
#[test]
fn smc_on_shared_code_page_is_boot_mode_invariant() {
    let original = "    mov rax, 111\n    add rax, 7\n    add rax, 9\n";
    let patched = original.replace("111", "222");
    let body = |text: &str| {
        let prog = assemble(&format!(".org 0x1000\n{text}")).expect("body assembles");
        let mut bytes = Vec::new();
        for c in &prog.chunks {
            bytes.extend_from_slice(&c.bytes);
        }
        bytes
    };
    let orig_bytes = body(original);
    let patch_bytes = body(&patched);
    assert_eq!(orig_bytes.len(), patch_bytes.len());
    let nop = encode(&Insn::Nop);
    let pad = (8 - orig_bytes.len() % 8) % 8;
    let region = orig_bytes.len() + pad;
    let pad_asm: String = "    nop\n".repeat(pad / nop.len());
    let mut patch_data = patch_bytes.clone();
    for _ in 0..pad / nop.len() {
        patch_data.extend_from_slice(&nop);
    }
    let patch_decl = patch_data
        .iter()
        .map(|b| format!("{b:#04x}"))
        .collect::<Vec<_>>()
        .join(", ");
    let copies: String = (0..region / 8)
        .map(|q| {
            let off = q * 8;
            format!("    mov r10, [r12 + {off}]\n    mov [r13 + {off}], r10\n")
        })
        .collect();
    let src = format!(
        r#"
        .org 0x1000
        start:
            mov r14, 0
        run:
        target:
        {original}{pad_asm}
            mov rbx, rax        ; latch the block's result
            cmp r14, 1
            je done
            mov r14, 1
            mov r12, patch_src
            mov r13, target
        {copies}
            jmp run
        done:
            mov rax, 60
            mov rdi, 0
            syscall
        patch_src:
            .byte {patch_decl}
        "#
    );
    let prog = assemble(&src).expect("smc program assembles");
    let (outcome, stats) = assert_identical(&loaded(prog), 10_000);
    assert_eq!(outcome.summary.reason, ExitReason::AllExited(0));
    // Pass 1 computes 111+7+9 = 127 and patches; pass 2 must see the new
    // bytes: 222+7+9 = 238.
    assert_eq!(
        outcome.regs[0].read(Reg::Rbx),
        238,
        "patched block did not take effect on the privatised page"
    );
    assert!(stats.mat.cow_breaks >= 1, "patch write must privatise");
    assert!(
        stats.block_evictions >= 1,
        "SMC write must still evict the cached block"
    );
}

/// Two machines booted from the same shared checkpoint diverge privately:
/// running (and dirtying) the first must not perturb the second, whose
/// run still matches a deep-copy boot bit for bit.
#[test]
fn sibling_machines_do_not_interfere() {
    let prog = assemble(
        r#"
        .org 0x1000
        start:
            mov r15, 0x20000
            mov rax, [r15]
            add rax, 5
            mov [r15], rax
            mov rdi, rax
            mov rax, 231
            syscall
        "#,
    )
    .expect("assembles");
    let setup = move |m: &mut Machine| {
        m.load_program(&prog);
        m.mem.map_range(0x20000, 0x21000, Perm::RW).unwrap();
        m.mem
            .write_bytes_unchecked(0x20000, &[10, 0, 0, 0])
            .unwrap();
    };
    let cp = checkpoint(&setup);
    // First sibling dirties the counter page.
    let (first, _) = run_from(&cp, 1_000, true);
    assert_eq!(first.summary.reason, ExitReason::AllExited(15));
    // Second sibling still observes the pristine checkpoint.
    let (second, _) = run_from(&cp, 1_000, true);
    let (deep, _) = run_from(&cp, 1_000, false);
    assert_eq!(second.summary.reason, ExitReason::AllExited(15));
    assert_eq!(second.events, deep.events);
    assert_eq!(second.mem, deep.mem);
}
