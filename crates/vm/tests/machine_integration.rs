//! Machine-level integration tests: scheduler, kernel and counter
//! behaviours that only show up across modules.

use elfie_isa::{assemble, Program, Reg};
use elfie_vm::{ExitReason, Machine, MachineConfig, Perm, StopWhen};

fn load(src: &str, cfg: MachineConfig) -> Machine {
    let prog: Program = assemble(src).expect("assembles");
    let mut m = Machine::new(cfg);
    m.load_program(&prog);
    m
}

const EXIT: &str = "\n mov rax, 231\n mov rdi, 0\n syscall\n";

#[test]
fn same_seed_reproduces_multithreaded_run_exactly() {
    let src = r#"
        .org 0x400000
        start:
            mov rax, 56
            mov rdi, 0
            mov rsi, 0x7f00100000
            syscall
            cmp rax, 0
            je child
            mov rcx, 3000
        p:
            mov rdx, 1
            mov rbx, word
            xadd [rbx], rdx
            sub rcx, 1
            cmp rcx, 0
            jne p
        pw:
            mov rdx, [done]
            cmp rdx, 1
            jne pw
            mov rax, 231
            mov rdi, 0
            syscall
        child:
            mov rcx, 3000
        c:
            mov rdx, 1
            mov rbx, word
            xadd [rbx], rdx
            sub rcx, 1
            cmp rcx, 0
            jne c
            mov rdx, 1
            mov rbx, done
            mov [rbx], rdx
            mov rax, 60
            mov rdi, 0
            syscall
        .org 0x600000
        word: .quad 0
        done: .quad 0
    "#;
    let run = |seed| {
        let mut m = load(
            src,
            MachineConfig {
                seed,
                ..MachineConfig::default()
            },
        );
        m.mem
            .map_range(0x7f000f0000, 0x7f00100000, Perm::RW)
            .unwrap();
        let s = m.run(10_000_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
        (
            m.threads[0].icount,
            m.threads[1].icount,
            m.threads[0].cycles,
        )
    };
    assert_eq!(run(5), run(5), "same seed, identical interleaving");
    assert_ne!(run(5), run(6), "different seed, different interleaving");
}

#[test]
fn exit_group_terminates_spinning_sibling() {
    // Thread 1 spins forever; main exit_group must take it down.
    let src = r#"
        .org 0x400000
        start:
            mov rax, 56
            mov rdi, 0
            mov rsi, 0x7f00100000
            syscall
            cmp rax, 0
            je child
            mov rcx, 2000
        delay:
            sub rcx, 1
            cmp rcx, 0
            jne delay
            mov rax, 231
            mov rdi, 9
            syscall
        child:
        spin:
            pause
            jmp spin
    "#;
    let mut m = load(src, MachineConfig::default());
    m.mem
        .map_range(0x7f000f0000, 0x7f00100000, Perm::RW)
        .unwrap();
    let s = m.run(10_000_000);
    assert_eq!(s.reason, ExitReason::AllExited(9));
    assert!(
        m.threads[1].is_exited(),
        "spinner was terminated by exit_group"
    );
}

#[test]
fn rearming_the_exit_counter_extends_the_run() {
    let src = r#"
        .org 0x400000
        start:
            mov rax, 10000
            mov rdi, 10
            syscall
            mov rax, 10000     ; re-arm before the first target hits
            mov rdi, 1000
            syscall
        spin:
            jmp spin
    "#;
    let mut m = load(src, MachineConfig::default());
    let s = m.run(1_000_000);
    assert_eq!(s.reason, ExitReason::AllExited(0));
    // 6 startup instructions + 1000 counted after the re-arm.
    assert_eq!(m.threads[0].icount, 1006);
}

#[test]
fn stop_conditions_compose_first_wins() {
    let mut m = load(
        ".org 0x400000\nstart: jmp start\n",
        MachineConfig::default(),
    );
    m.stop_conditions.push(StopWhen::GlobalInsns(1_000));
    m.stop_conditions.push(StopWhen::GlobalInsns(100));
    let s = m.run(1_000_000);
    assert_eq!(
        s.reason,
        ExitReason::StopCondition(1),
        "tighter condition fires"
    );
    assert_eq!(m.global_icount(), 100);
}

#[test]
fn brk_heap_survives_write_read_cycle() {
    let src = &format!(
        r#"
        .org 0x400000
        start:
            mov rax, 12          ; brk(0) -> current
            mov rdi, 0
            syscall
            mov r12, rax         ; base
            mov rax, 12          ; brk(base + 0x3000)
            mov rdi, r12
            add rdi, 0x3000
            syscall
            mov rbx, r12
            mov rcx, 0x600        ; 1536 quadwords
        fill:
            mov [rbx], rcx
            add rbx, 8
            sub rcx, 1
            cmp rcx, 0
            jne fill
            mov rax, [r12]       ; readback of first cell (wrote 0x600)
            mov r15, rax
            {EXIT}
        "#
    );
    let mut m = load(src, MachineConfig::default());
    let s = m.run(1_000_000);
    assert_eq!(s.reason, ExitReason::AllExited(0));
    assert_eq!(m.threads[0].regs.read(Reg::R15), 0x600);
}

#[test]
fn repmovs_copies_large_ranges_across_pages() {
    let src = &format!(
        r#"
        .org 0x400000
        start:
            ; stamp a pattern at src
            mov rbx, 0x600000
            mov rcx, 0x1000      ; 4096 quadwords = 32 KiB
        stamp:
            mov [rbx], rcx
            add rbx, 8
            sub rcx, 1
            cmp rcx, 0
            jne stamp
            ; bulk copy 32 KiB
            mov rsi, 0x600000
            mov rdi, 0x700000
            mov rcx, 0x1000
            repmovs
            mov r13, rcx          ; must be 0
            mov rax, [0x700000]
            mov r14, rax
            mov rbx, 0x700000
            add rbx, 0x7ff8
            mov rax, [rbx]
            mov r15, rax
            {EXIT}
        "#
    );
    let mut m = load(src, MachineConfig::default());
    m.mem.map_range(0x600000, 0x610000, Perm::RW).unwrap();
    m.mem.map_range(0x700000, 0x710000, Perm::RW).unwrap();
    let s = m.run(1_000_000);
    assert_eq!(s.reason, ExitReason::AllExited(0));
    assert_eq!(m.threads[0].regs.read(Reg::R13), 0, "rcx consumed");
    assert_eq!(
        m.threads[0].regs.read(Reg::R14),
        0x1000,
        "first quadword copied"
    );
    assert_eq!(m.threads[0].regs.read(Reg::R15), 1, "last quadword copied");
}

#[test]
fn repmovs_fault_rewinds_for_retry() {
    // Destination page unmapped: the fault must leave rip ON the repmovs
    // so a harness can map the page and re-execute (lazy injection).
    let src = r#"
        .org 0x400000
        start:
            mov rsi, 0x600000
            mov rdi, 0x900000    ; unmapped
            mov rcx, 8
            repmovs
            mov rax, 231
            mov rdi, 0
            syscall
    "#;
    let mut m = load(src, MachineConfig::default());
    m.mem.map_range(0x600000, 0x601000, Perm::RW).unwrap();
    let s = m.run(1_000);
    let ExitReason::Fault { tid: 0, .. } = s.reason else {
        panic!("expected fault, got {:?}", s.reason);
    };
    let rip = m.threads[0].regs.rip;
    // Map the page and resume: the copy must complete this time.
    m.mem.map_range(0x900000, 0x901000, Perm::RW).unwrap();
    let s2 = m.run(1_000);
    assert_eq!(s2.reason, ExitReason::AllExited(0));
    assert!(m.threads[0].regs.rip > rip);
}

#[test]
fn gettimeofday_advances_with_cycles() {
    let src = &format!(
        r#"
        .org 0x400000
        start:
            mov rax, 96
            mov rdi, 0x600000
            mov rsi, 0
            syscall
            mov r12, [0x600008]   ; usec #1
            mov rcx, 60000
        burn:
            sub rcx, 1
            cmp rcx, 0
            jne burn
            mov rax, 96
            mov rdi, 0x600000
            mov rsi, 0
            syscall
            mov r13, [0x600008]   ; usec #2
            {EXIT}
        "#
    );
    let mut m = load(src, MachineConfig::default());
    m.mem.map_range(0x600000, 0x601000, Perm::RW).unwrap();
    let s = m.run(10_000_000);
    assert_eq!(s.reason, ExitReason::AllExited(0));
    let t1 = m.threads[0].regs.read(Reg::R12);
    let t2 = m.threads[0].regs.read(Reg::R13);
    assert!(t2 > t1, "time moved forward: {t1} -> {t2}");
}

#[test]
fn fuel_budget_is_exact_across_calls() {
    let mut m = load(
        ".org 0x400000\nstart: jmp start\n",
        MachineConfig::default(),
    );
    let s1 = m.run(77);
    assert_eq!(s1.reason, ExitReason::FuelExhausted);
    assert_eq!(s1.insns, 77);
    let s2 = m.run(23);
    assert_eq!(s2.insns, 23);
    assert_eq!(
        m.global_icount(),
        100,
        "machine-lifetime counter accumulates"
    );
}
