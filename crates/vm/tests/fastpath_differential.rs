//! Differential property tests for the VM fast path.
//!
//! The decoded basic-block cache and the software TLB are pure
//! optimisations: execution through them must be **bit-identical** to the
//! per-step interpreter. These tests enforce that by running the same
//! program on two machines that differ only in `MachineConfig::block_cache`
//! and comparing everything observable:
//!
//! * the full observer event stream (instructions, memory accesses,
//!   syscalls, markers, thread lifecycle),
//! * the [`RunSummary`] (exit reason, retired instructions, cycles),
//! * final register files of every thread,
//! * the complete memory image (page bases, permissions, bytes),
//! * kernel stdout.
//!
//! Programs come from three generators: random straight-line instruction
//! soup (via `elfie_isa::test_strategies`, including faulting and
//! undecodable cases), random branchy block graphs that loop enough to
//! re-execute warm cached blocks, and a hand-written self-modifying
//! program that overwrites a block the cache has already decoded.

use elfie_isa::test_strategies::arb_insn;
use elfie_isa::{assemble, encode, Cond, Insn, MarkerKind, Reg, RegFile};
use elfie_vm::{ExitReason, FastPathStats, Machine, MachineConfig, Observer, Perm, RunSummary};
use proptest::prelude::*;

/// One observer callback, recorded verbatim.
#[derive(Debug, Clone, PartialEq)]
enum Ev {
    Insn(u32, u64, Insn, usize),
    Read(u32, u64, u64),
    Write(u32, u64, u64),
    Sys(u32, u64, [u64; 6]),
    SysRet(u32, u64, u64, usize),
    Marker(u32, MarkerKind, u32),
    Start(u32, u32),
    Exit(u32, i32),
}

/// Records every observer callback in order.
#[derive(Debug, Default)]
struct RecObs(Vec<Ev>);

impl Observer for RecObs {
    fn on_insn(&mut self, tid: u32, rip: u64, insn: &Insn, len: usize) {
        self.0.push(Ev::Insn(tid, rip, *insn, len));
    }
    fn on_mem_read(&mut self, tid: u32, addr: u64, size: u64) {
        self.0.push(Ev::Read(tid, addr, size));
    }
    fn on_mem_write(&mut self, tid: u32, addr: u64, size: u64) {
        self.0.push(Ev::Write(tid, addr, size));
    }
    fn on_syscall(&mut self, tid: u32, nr: u64, args: &[u64; 6]) {
        self.0.push(Ev::Sys(tid, nr, *args));
    }
    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: u64, writes: &[(u64, Vec<u8>)]) {
        self.0.push(Ev::SysRet(tid, nr, ret, writes.len()));
    }
    fn on_marker(&mut self, tid: u32, kind: MarkerKind, tag: u32) {
        self.0.push(Ev::Marker(tid, kind, tag));
    }
    fn on_thread_start(&mut self, parent: u32, child: u32) {
        self.0.push(Ev::Start(parent, child));
    }
    fn on_thread_exit(&mut self, tid: u32, code: i32) {
        self.0.push(Ev::Exit(tid, code));
    }
}

/// Everything observable about one finished run.
#[derive(Debug, PartialEq)]
struct Outcome {
    summary: RunSummary,
    events: Vec<Ev>,
    regs: Vec<RegFile>,
    mem: Vec<(u64, Perm, Vec<u8>)>,
    stdout: Vec<u8>,
}

fn run_one(
    setup: &dyn Fn(&mut Machine<RecObs>),
    fuel: u64,
    cached: bool,
) -> (Outcome, FastPathStats) {
    let cfg = MachineConfig {
        block_cache: cached,
        ..MachineConfig::default()
    };
    let mut m = Machine::with_observer(cfg, RecObs::default());
    setup(&mut m);
    let summary = m.run(fuel);
    let stats = m.fastpath_stats();
    let outcome = Outcome {
        summary,
        events: std::mem::take(&mut m.obs.0),
        regs: m.threads.iter().map(|t| t.regs.clone()).collect(),
        mem: m
            .mem
            .pages()
            .map(|(base, perm, data)| (base, perm, data.to_vec()))
            .collect(),
        stdout: m.kernel.stdout.clone(),
    };
    (outcome, stats)
}

/// Runs `setup` twice — block cache on and off — and asserts the two
/// executions are indistinguishable. Returns the cached run for further
/// checks.
fn assert_identical(setup: &dyn Fn(&mut Machine<RecObs>), fuel: u64) -> (Outcome, FastPathStats) {
    let (cached, stats) = run_one(setup, fuel, true);
    let (uncached, base) = run_one(setup, fuel, false);
    assert_eq!(base.block_hits, 0, "uncached run must not touch the cache");
    assert_eq!(cached.summary, uncached.summary, "run summary diverged");
    assert_eq!(cached.regs, uncached.regs, "final registers diverged");
    assert_eq!(cached.stdout, uncached.stdout, "stdout diverged");
    // Compare event streams with a usable message on first divergence.
    for (i, (a, b)) in cached.events.iter().zip(uncached.events.iter()).enumerate() {
        assert_eq!(a, b, "event {i} diverged (cached vs uncached)");
    }
    assert_eq!(
        cached.events.len(),
        uncached.events.len(),
        "event count diverged"
    );
    assert_eq!(cached.mem, uncached.mem, "memory image diverged");
    (cached, stats)
}

const CODE_BASE: u64 = 0x1000;
const ARENA_BASE: u64 = 0x20000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random instruction soup, including control flow, faulting memory
    /// operands and undecodable tails. Registers point into a mapped
    /// arena so some accesses succeed; `rcx` is kept small so `rep movs`
    /// stays bounded.
    #[test]
    fn straight_line_soup_is_bit_identical(
        insns in proptest::collection::vec(arb_insn(), 1..32),
    ) {
        let mut code = Vec::new();
        for i in &insns {
            code.extend(encode(i));
        }
        let setup = move |m: &mut Machine<RecObs>| {
            m.mem.map_range(CODE_BASE, 0x5000, Perm::RWX).unwrap();
            m.mem
                .map_range(ARENA_BASE, ARENA_BASE + 0x20000, Perm::RW)
                .unwrap();
            m.mem.write_bytes_unchecked(CODE_BASE, &code).unwrap();
            let mut regs = RegFile::new();
            regs.rip = CODE_BASE;
            for r in 0..16u8 {
                let reg = Reg::from_index(r).unwrap();
                regs.write(reg, ARENA_BASE + 0x10000 + (r as u64) * 64);
            }
            regs.write(Reg::Rcx, 4); // bound rep movs
            regs.write(Reg::Rsp, ARENA_BASE + 0x1f000);
            m.add_thread(regs);
        };
        assert_identical(&setup, 4_000);
    }

    /// Random block graphs with loops: conditional and unconditional jumps
    /// between blocks re-execute the same addresses, exercising warm block
    /// cache hits and per-thread cursors across taken/not-taken branches.
    #[test]
    fn branchy_blocks_are_bit_identical(src in branchy_source()) {
        let prog = assemble(&src).expect("generated source assembles");
        let setup = move |m: &mut Machine<RecObs>| {
            m.load_program(&prog);
            m.mem
                .map_range(ARENA_BASE, ARENA_BASE + 0x1000, Perm::RW)
                .unwrap();
            m.threads[0].regs.write(Reg::R15, ARENA_BASE);
        };
        let (outcome, stats) = assert_identical(&setup, 20_000);
        // Loops mean warm execution: unless the program exited almost
        // immediately, the cache must have served instructions.
        if outcome.summary.insns > 200 {
            prop_assert!(stats.block_hits > 0, "no cache hits after {} insns", outcome.summary.insns);
        }
    }
}

/// Generates assembly for a random graph of small basic blocks. Each block
/// does a few safe ALU/move/load/store ops (memory via `r15` into a mapped
/// arena) and ends with a jump, a conditional jump, or a fall-through; the
/// final fall-through lands on an `exit(0)` stub.
fn branchy_source() -> impl Strategy<Value = String> {
    const REGS: [&str; 6] = ["rax", "rbx", "rcx", "rdx", "rsi", "rdi"];
    let op = (
        0u8..8,
        0usize..6,
        0usize..6,
        0u32..64,
        (0u64..63).prop_map(|d| d * 8),
    );
    let block = (
        proptest::collection::vec(op, 1..6),
        0u8..14,
        proptest::arbitrary::any::<usize>(),
        0usize..12,
    );
    proptest::collection::vec(block, 2..8).prop_map(|blocks| {
        let n = blocks.len();
        let mut s = String::from(".org 0x1000\n");
        for (i, (ops, kind, target, cond)) in blocks.iter().enumerate() {
            s.push_str(&format!("b{i}:\n"));
            for (k, r1, r2, imm, disp) in ops {
                let (r1, r2) = (REGS[*r1], REGS[*r2]);
                s.push_str(&match k {
                    0 => format!("    add {r1}, {r2}\n"),
                    1 => format!("    sub {r1}, {imm}\n"),
                    2 => format!("    mov {r1}, {imm}\n"),
                    3 => format!("    mov {r1}, {r2}\n"),
                    4 => format!("    cmp {r1}, {r2}\n"),
                    5 => format!("    xor {r1}, {r2}\n"),
                    6 => format!("    mov [r15 + {disp}], {r1}\n"),
                    _ => format!("    mov {r1}, [r15 + {disp}]\n"),
                });
            }
            let t = target % n;
            match kind {
                0..=3 => s.push_str(&format!("    jmp b{t}\n")),
                4..=11 => {
                    let suffix = Cond::ALL[*cond].suffix();
                    s.push_str(&format!("    j{suffix} b{t}\n"));
                }
                _ => {} // fall through
            }
        }
        s.push_str("exit:\n    mov rax, 60\n    mov rdi, 0\n    syscall\n");
        s
    })
}

/// Assembles `body` on its own and returns its encoded bytes.
fn body_bytes(body: &str) -> Vec<u8> {
    let prog = assemble(&format!(".org 0x1000\n{body}")).expect("body assembles");
    let mut bytes = Vec::new();
    for c in &prog.chunks {
        bytes.extend_from_slice(&c.bytes);
    }
    bytes
}

/// Self-modifying code: the guest executes a block (caching it), then
/// overwrites that same block's bytes with a patched copy and re-executes
/// it. Cached execution must both match the uncached interpreter *and*
/// actually run the new bytes — a stale cached block would compute the
/// pre-patch value.
#[test]
fn smc_overwrites_already_cached_block() {
    let original = "    mov rax, 111\n    add rax, 7\n    add rax, 9\n";
    let patched = original.replace("111", "222");
    let orig_bytes = body_bytes(original);
    let patch_bytes = body_bytes(&patched);
    assert_eq!(
        orig_bytes.len(),
        patch_bytes.len(),
        "patched block must be the same size so the copy is length-safe"
    );
    let nop = encode(&Insn::Nop);
    // Pad the region to a multiple of 8 so the guest can patch it with
    // plain 64-bit load/store pairs.
    let pad = (8 - orig_bytes.len() % 8) % 8;
    let region = orig_bytes.len() + pad;
    let pad_asm: String = "    nop\n".repeat(pad / nop.len());
    let mut patch_data: Vec<u8> = patch_bytes.clone();
    for _ in 0..pad / nop.len() {
        patch_data.extend_from_slice(&nop);
    }
    let patch_decl = patch_data
        .iter()
        .map(|b| format!("{b:#04x}"))
        .collect::<Vec<_>>()
        .join(", ");
    let copies: String = (0..region / 8)
        .map(|q| {
            let off = q * 8;
            format!("    mov r10, [r12 + {off}]\n    mov [r13 + {off}], r10\n")
        })
        .collect();
    let src = format!(
        r#"
        .org 0x1000
        start:
            mov r14, 0
        run:
        target:
        {original}{pad_asm}
            mov rbx, rax        ; latch the block's result
            cmp r14, 1
            je done
            mov r14, 1
            mov r12, patch_src
            mov r13, target
        {copies}
            jmp run
        done:
            mov rax, 60
            mov rdi, 0
            syscall
        patch_src:
            .byte {patch_decl}
        "#
    );
    let prog = assemble(&src).expect("smc program assembles");
    let setup = move |m: &mut Machine<RecObs>| m.load_program(&prog);
    let (outcome, stats) = assert_identical(&setup, 10_000);
    assert_eq!(outcome.summary.reason, ExitReason::AllExited(0));
    // Pass 1 computes 111+7+9 = 127 and patches; pass 2 must see the new
    // bytes: 222+7+9 = 238.
    assert_eq!(
        outcome.regs[0].read(Reg::Rbx),
        238,
        "patched block did not take effect"
    );
    assert!(
        stats.block_evictions >= 1,
        "SMC write must evict the cached block"
    );
    assert!(stats.block_hits > 0, "block was executed from the cache");
}

/// A tight counted loop stays bit-identical and runs almost entirely out
/// of the block cache once warm.
#[test]
fn counted_loop_runs_warm() {
    let prog = assemble(
        r#"
        .org 0x1000
        start:
            mov rcx, 5000
            mov rax, 0
        loop:
            add rax, 3
            sub rcx, 1
            cmp rcx, 0
            jne loop
            mov rax, 60
            mov rdi, 0
            syscall
        "#,
    )
    .expect("assembles");
    let setup = move |m: &mut Machine<RecObs>| m.load_program(&prog);
    let (outcome, stats) = assert_identical(&setup, 100_000);
    assert_eq!(outcome.summary.reason, ExitReason::AllExited(0));
    let rate = stats.block_hit_rate();
    assert!(
        rate > 0.95,
        "warm loop should run from the cache (hit rate {rate:.3})"
    );
}
