//! # elfie-vm
//!
//! The guest machine for the ELFies reproduction: paged memory, a
//! functional interpreter for the [`elfie_isa`] instruction set, an
//! emulated Linux-like kernel (files, heap, `clone` threads, futexes,
//! time), per-thread hardware performance counters with a programmable
//! graceful-exit callback, and a jittered multi-thread scheduler.
//!
//! In the paper's terms this crate is **"native hardware + Linux"**: the
//! substrate on which test programs, pinball replays and ELFies execute.
//! Instrumentation-based tools (the PinPlay logger, BBV profilers,
//! simulator front-ends) attach via [`Observer`]; the PinPlay replayer
//! injects syscall side effects via [`SyscallInterposer`].
//!
//! ## Example
//!
//! ```
//! use elfie_isa::assemble;
//! use elfie_vm::{ExitReason, Machine, MachineConfig};
//!
//! let prog = assemble(
//!     r#"
//!     .org 0x400000
//!     start:
//!         mov rax, 1      ; write(1, msg, 3)
//!         mov rdi, 1
//!         mov rsi, msg
//!         mov rdx, 3
//!         syscall
//!         mov rax, 231    ; exit_group(0)
//!         mov rdi, 0
//!         syscall
//!     msg: .asciz "ok\n"
//!     "#,
//! )?;
//! let mut m = Machine::new(MachineConfig::default());
//! m.load_program(&prog);
//! let summary = m.run(10_000);
//! assert_eq!(summary.reason, ExitReason::AllExited(0));
//! assert_eq!(m.kernel.stdout, b"ok\n");
//! # Ok::<(), elfie_isa::AsmError>(())
//! ```

pub mod bbcache;
pub mod cpu;
pub mod fs;
pub mod hwmodel;
pub mod kernel;
pub mod machine;
pub mod mem;
pub mod obs;
pub mod thread;

pub use bbcache::{Block, BlockCache, BlockCacheStats, MAX_BLOCK_INSNS};
pub use cpu::{cond_holds, exec, fetch_decode, step, Effect, Fault, StepEnv, MAX_INSN_LEN};
pub use fs::{resolve_path, InMemoryFs};
pub use hwmodel::{CacheGeom, DirectCache, HwModel, HwParams};
pub use kernel::{
    errno, is_error, neg_errno, nr, Control, FdKind, FileDesc, Kernel, KernelConfig, SyscallOutcome,
};
pub use machine::{
    hit_rate, ExitReason, FastPathStats, Machine, MachineConfig, RunSummary, StopWhen,
    SyscallAction, SyscallInterposer, ThreadStep,
};
pub use mem::{Access, MaterializeStats, MemError, Memory, PageData, Perm};
pub use obs::{NullObserver, Observer};
pub use thread::{RetireCounter, Thread, ThreadState};
