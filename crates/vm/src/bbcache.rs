//! Decoded basic-block translation cache.
//!
//! The per-step interpreter re-fetches and re-decodes the instruction at
//! `rip` on every retirement. This module removes that cost the way
//! record-and-replay systems and bitcode interpreters do: on first
//! execution at an address, straight-line instructions up to (and
//! including) the next block terminator are decoded once into a [`Block`]
//! of `(Insn, length)` pairs, stored in a direct-mapped table keyed on the
//! block's start address. Subsequent visits execute pre-decoded
//! instructions via [`crate::cpu::exec`] without touching the decoder.
//!
//! ## Invalidation
//!
//! Cached blocks are stale the moment the bytes or mappings under them
//! change, so correctness rests on two mechanisms:
//!
//! * **Generations** — every block records the cache generation it was
//!   built in; [`BlockCache::flush`] just bumps the generation, lazily
//!   invalidating every block at once. The machine flushes whenever the
//!   memory layout epoch changes (map / unmap / protect).
//! * **Targeted eviction** — for self-modifying code, pages holding
//!   cached blocks are watched ([`crate::mem::Memory::watch_exec_page`]);
//!   a write to one reports the page and [`BlockCache::evict_page`]
//!   removes exactly the blocks overlapping it, so re-execution decodes
//!   the new bytes while the rest of the cache stays warm.
//!
//! A block never extends past a fetch or decode error — the erroring
//! instruction is always re-derived by the slow path so faults stay
//! precise — and is capped at [`MAX_BLOCK_INSNS`] instructions.

use crate::cpu::MAX_INSN_LEN;
use crate::mem::Memory;
use elfie_isa::{decode, page_base, Insn, PAGE_SIZE};

/// Maximum pre-decoded instructions per block.
pub const MAX_BLOCK_INSNS: usize = 64;

/// Number of direct-mapped table entries (power of two).
const TABLE_SIZE: usize = 2048;

/// One pre-decoded straight-line run of instructions.
#[derive(Debug, Clone)]
pub struct Block {
    /// Guest address of the first instruction.
    pub start: u64,
    /// Guest address one past the last instruction's bytes.
    pub end: u64,
    /// The decoded instructions with their encoded lengths.
    pub insns: Vec<(Insn, u8)>,
    /// Cache generation the block was built in.
    generation: u64,
}

/// Counters for the block cache.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct BlockCacheStats {
    /// Instructions served from a cached block (no decode).
    pub hits: u64,
    /// Block builds (each implies one decode pass over the block).
    pub misses: u64,
    /// Blocks evicted by self-modifying-code writes.
    pub evictions: u64,
    /// Whole-cache generation flushes (layout changes).
    pub flushes: u64,
}

/// Direct-mapped cache of decoded basic blocks, keyed by start address.
#[derive(Debug)]
pub struct BlockCache {
    table: Vec<Option<Block>>,
    generation: u64,
    stats: BlockCacheStats,
}

impl Default for BlockCache {
    fn default() -> BlockCache {
        BlockCache::new()
    }
}

#[inline]
fn table_index(rip: u64) -> usize {
    // Mix in the page number so block starts that differ only in high
    // bits don't all collide in one slot.
    ((rip ^ (rip >> 12)) as usize) & (TABLE_SIZE - 1)
}

impl BlockCache {
    /// An empty cache.
    pub fn new() -> BlockCache {
        BlockCache {
            table: (0..TABLE_SIZE).map(|_| None).collect(),
            generation: 0,
            stats: BlockCacheStats::default(),
        }
    }

    /// The current invalidation generation.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> BlockCacheStats {
        self.stats
    }

    /// Records one instruction served from a cached block.
    #[inline]
    pub fn count_hit(&mut self) {
        self.stats.hits += 1;
    }

    /// Records `n` instructions served from a cached block (the batched
    /// step path counts locally and flushes once per batch).
    #[inline]
    pub fn add_hits(&mut self, n: u64) {
        self.stats.hits += n;
    }

    /// The block occupying table `slot`, regardless of liveness — callers
    /// must have just validated it via [`BlockCache::lookup`],
    /// [`BlockCache::insn_at`] or [`BlockCache::build`].
    #[inline]
    pub fn block_at(&self, slot: usize) -> Option<&Block> {
        self.table[slot].as_ref()
    }

    /// Invalidates every cached block by bumping the generation.
    pub fn flush(&mut self) {
        self.generation += 1;
        self.stats.flushes += 1;
    }

    /// Removes every block overlapping the page at `page_addr` (the
    /// self-modifying-code path). Returns how many blocks died.
    pub fn evict_page(&mut self, page_addr: u64) -> usize {
        let lo = page_base(page_addr);
        let hi = lo + PAGE_SIZE;
        let mut evicted = 0;
        for slot in self.table.iter_mut() {
            if let Some(b) = slot {
                if b.generation == self.generation && b.start < hi && b.end > lo {
                    *slot = None;
                    evicted += 1;
                }
            }
        }
        self.stats.evictions += evicted as u64;
        evicted
    }

    /// The live block starting exactly at `rip`, with its table slot.
    #[inline]
    pub fn lookup(&mut self, rip: u64) -> Option<(usize, &Block)> {
        let i = table_index(rip);
        match &self.table[i] {
            Some(b) if b.start == rip && b.generation == self.generation => {
                self.stats.hits += 1;
                Some((i, self.table[i].as_ref().expect("just matched")))
            }
            _ => None,
        }
    }

    /// The `pos`-th instruction of the live block `block_start` in table
    /// slot `slot`, if that block is still cached. Used by per-thread
    /// cursors stepping through a block one instruction at a time.
    #[inline]
    pub fn insn_at(&self, slot: usize, block_start: u64, pos: usize) -> Option<(Insn, u8)> {
        match &self.table[slot] {
            Some(b) if b.start == block_start && b.generation == self.generation => {
                b.insns.get(pos).copied()
            }
            _ => None,
        }
    }

    /// Decodes the basic block starting at `rip` and inserts it,
    /// replacing whatever occupied its direct-mapped slot. Pages the block
    /// spans are watch-marked in `mem` for self-modifying-code tracking.
    /// Returns the table slot, or `None` when not even the first
    /// instruction decodes (the slow path then reproduces the exact
    /// fault).
    pub fn build(&mut self, mem: &mut Memory, rip: u64) -> Option<usize> {
        let mut insns = Vec::new();
        let mut pc = rip;
        for _ in 0..MAX_BLOCK_INSNS {
            let mut buf = [0u8; MAX_INSN_LEN];
            let n = match mem.fetch(pc, &mut buf) {
                Ok(n) => n,
                Err(_) => break,
            };
            let (insn, len) = match decode(&buf[..n]) {
                Ok(v) => v,
                Err(_) => break,
            };
            insns.push((insn, len as u8));
            pc = pc.wrapping_add(len as u64);
            if insn.ends_basic_block() {
                break;
            }
        }
        if insns.is_empty() {
            return None;
        }
        self.stats.misses += 1;
        let block = Block {
            start: rip,
            end: pc,
            insns,
            generation: self.generation,
        };
        let mut page = page_base(block.start);
        while page < block.end {
            mem.watch_exec_page(page);
            page += PAGE_SIZE;
        }
        let i = table_index(rip);
        self.table[i] = Some(block);
        Some(i)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Perm;
    use elfie_isa::assemble;

    fn memory_for(src: &str) -> (Memory, u64) {
        let p = assemble(src).expect("assembles");
        let mut mem = Memory::new();
        for c in &p.chunks {
            mem.map_range(c.addr, c.end().max(c.addr + 1), Perm::RWX)
                .unwrap();
            mem.write_bytes_unchecked(c.addr, &c.bytes).unwrap();
        }
        (mem, p.entry)
    }

    #[test]
    fn build_stops_at_terminator() {
        let (mut mem, entry) = memory_for(
            r#"
            .org 0x1000
            start:
                mov rax, 1
                add rax, 2
                jmp start
                nop
            "#,
        );
        let mut bc = BlockCache::new();
        let slot = bc.build(&mut mem, entry).expect("builds");
        let (n, first, last) = {
            let (_, b) = bc.lookup(entry).expect("cached");
            (b.insns.len(), b.insns[0].0, b.insns[2].0)
        };
        assert_eq!(n, 3, "mov, add, jmp — not the trailing nop");
        assert!(matches!(last, Insn::Jmp(_)));
        assert_eq!(bc.insn_at(slot, entry, 0).map(|(i, _)| i), Some(first));
    }

    #[test]
    fn lookup_misses_mid_block() {
        let (mut mem, entry) = memory_for(".org 0x1000\nstart:\n nop\n nop\n jmp start\n");
        let mut bc = BlockCache::new();
        bc.build(&mut mem, entry).unwrap();
        assert!(bc.lookup(entry).is_some());
        assert!(bc.lookup(entry + 1).is_none(), "keyed on start address");
    }

    #[test]
    fn flush_invalidates_without_clearing() {
        let (mut mem, entry) = memory_for(".org 0x1000\nstart: jmp start\n");
        let mut bc = BlockCache::new();
        bc.build(&mut mem, entry).unwrap();
        bc.flush();
        assert!(bc.lookup(entry).is_none(), "stale generation");
        assert_eq!(bc.stats().flushes, 1);
    }

    #[test]
    fn evict_page_kills_overlapping_blocks_only() {
        let (mut mem, _) = memory_for(
            r#"
            .org 0x1000
            a:  jmp a
            .org 0x3000
            b:  jmp b
            "#,
        );
        let mut bc = BlockCache::new();
        bc.build(&mut mem, 0x1000).unwrap();
        bc.build(&mut mem, 0x3000).unwrap();
        assert_eq!(bc.evict_page(0x1000), 1);
        assert!(bc.lookup(0x1000).is_none());
        assert!(bc.lookup(0x3000).is_some(), "other page untouched");
        assert_eq!(bc.stats().evictions, 1);
    }

    #[test]
    fn build_watches_spanned_pages() {
        let (mut mem, entry) = memory_for(".org 0x1000\nstart:\n nop\n jmp start\n");
        let mut bc = BlockCache::new();
        bc.build(&mut mem, entry).unwrap();
        mem.write_u8(0x1001, 0x90).unwrap();
        assert!(mem.has_dirty_code(), "write to cached code page reported");
    }

    #[test]
    fn unbuildable_block_returns_none() {
        let mut mem = Memory::new();
        let mut bc = BlockCache::new();
        assert!(bc.build(&mut mem, 0x4000).is_none(), "unmapped");
        let (mut mem, _) = memory_for(".org 0x1000\nstart: .byte 0xee, 0xee\n");
        assert!(bc.build(&mut mem, 0x1000).is_none(), "undecodable bytes");
    }
}
