//! The emulated in-memory filesystem backing the guest kernel.
//!
//! Paths are Unix-style strings. Relative paths resolve against the
//! kernel's current working directory — which matters for SYSSTATE: the
//! paper's `pinball_sysstate` tool materialises proxy files in a
//! `sysstate/workdir` directory and the ELFie is executed with that
//! directory as its cwd.

use std::collections::BTreeMap;

/// A simple in-memory filesystem.
#[derive(Debug, Clone, Default)]
pub struct InMemoryFs {
    files: BTreeMap<String, Vec<u8>>,
}

/// Normalises a path against `cwd`: joins relative paths and squeezes
/// `.`/`..`/duplicate separators.
pub fn resolve_path(cwd: &str, path: &str) -> String {
    let joined = if path.starts_with('/') {
        path.to_string()
    } else {
        format!("{}/{}", cwd.trim_end_matches('/'), path)
    };
    let mut parts: Vec<&str> = Vec::new();
    for comp in joined.split('/') {
        match comp {
            "" | "." => {}
            ".." => {
                parts.pop();
            }
            other => parts.push(other),
        }
    }
    format!("/{}", parts.join("/"))
}

impl InMemoryFs {
    /// Creates an empty filesystem.
    pub fn new() -> InMemoryFs {
        InMemoryFs::default()
    }

    /// Creates or replaces a file with the given contents. `path` must be
    /// absolute and normalised.
    pub fn put(&mut self, path: &str, contents: Vec<u8>) {
        self.files.insert(path.to_string(), contents);
    }

    /// True if the file exists.
    pub fn exists(&self, path: &str) -> bool {
        self.files.contains_key(path)
    }

    /// Read-only view of a file's contents.
    pub fn get(&self, path: &str) -> Option<&[u8]> {
        self.files.get(path).map(|v| v.as_slice())
    }

    /// Size of a file in bytes.
    pub fn size(&self, path: &str) -> Option<u64> {
        self.files.get(path).map(|v| v.len() as u64)
    }

    /// Removes a file, returning its contents.
    pub fn remove(&mut self, path: &str) -> Option<Vec<u8>> {
        self.files.remove(path)
    }

    /// Reads up to `buf.len()` bytes at `offset`, returning the count
    /// (0 at or past EOF).
    pub fn read_at(&self, path: &str, offset: u64, buf: &mut [u8]) -> Option<usize> {
        let data = self.files.get(path)?;
        let off = offset.min(data.len() as u64) as usize;
        let n = buf.len().min(data.len() - off);
        buf[..n].copy_from_slice(&data[off..off + n]);
        Some(n)
    }

    /// Writes `buf` at `offset`, growing (zero-filling) the file as
    /// needed. Returns bytes written.
    pub fn write_at(&mut self, path: &str, offset: u64, buf: &[u8]) -> Option<usize> {
        let data = self.files.get_mut(path)?;
        let end = offset as usize + buf.len();
        if data.len() < end {
            data.resize(end, 0);
        }
        data[offset as usize..end].copy_from_slice(buf);
        Some(buf.len())
    }

    /// Truncates a file to zero length.
    pub fn truncate(&mut self, path: &str) -> bool {
        match self.files.get_mut(path) {
            Some(d) => {
                d.clear();
                true
            }
            None => false,
        }
    }

    /// Iterates over `(path, contents)` pairs in path order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &[u8])> {
        self.files.iter().map(|(k, v)| (k.as_str(), v.as_slice()))
    }

    /// Number of files.
    pub fn len(&self) -> usize {
        self.files.len()
    }

    /// True when the filesystem holds no files.
    pub fn is_empty(&self) -> bool {
        self.files.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn path_resolution() {
        assert_eq!(resolve_path("/work", "input.txt"), "/work/input.txt");
        assert_eq!(resolve_path("/work", "/abs/file"), "/abs/file");
        assert_eq!(resolve_path("/work/dir", "../other"), "/work/other");
        assert_eq!(resolve_path("/", "a//b/./c"), "/a/b/c");
        assert_eq!(resolve_path("/w", "../../.."), "/");
    }

    #[test]
    fn read_write_roundtrip() {
        let mut fs = InMemoryFs::new();
        fs.put("/data", b"hello world".to_vec());
        let mut buf = [0u8; 5];
        assert_eq!(fs.read_at("/data", 6, &mut buf), Some(5));
        assert_eq!(&buf, b"world");
        assert_eq!(fs.read_at("/data", 100, &mut buf), Some(0));
        assert_eq!(fs.read_at("/missing", 0, &mut buf), None);
    }

    #[test]
    fn write_grows_file() {
        let mut fs = InMemoryFs::new();
        fs.put("/f", vec![]);
        fs.write_at("/f", 4, b"abc").unwrap();
        assert_eq!(fs.get("/f").unwrap(), &[0, 0, 0, 0, b'a', b'b', b'c']);
    }

    #[test]
    fn truncate_and_remove() {
        let mut fs = InMemoryFs::new();
        fs.put("/f", b"xyz".to_vec());
        assert!(fs.truncate("/f"));
        assert_eq!(fs.size("/f"), Some(0));
        assert!(fs.remove("/f").is_some());
        assert!(!fs.exists("/f"));
        assert!(!fs.truncate("/f"));
    }
}
