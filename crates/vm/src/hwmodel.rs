//! The "native hardware" timing model.
//!
//! When an ELFie (or any guest program) runs on the [`crate::machine::Machine`],
//! cycles are charged by this lightweight model: a base cost per
//! instruction class plus data-cache hit/miss costs from a small two-level
//! cache. This is what makes hardware-counter CPI measurements meaningful
//! for the region-selection validation case studies (paper Section IV-A):
//! program phases with different memory behaviour show different CPI, just
//! as they do on a real machine.

use elfie_isa::{AluOp, FpOp, Insn};

/// Configuration of one direct-mapped cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeom {
    /// Total size in bytes (power of two).
    pub size: u64,
    /// Line size in bytes (power of two).
    pub line: u64,
}

impl CacheGeom {
    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.size / self.line
    }
}

/// A direct-mapped cache keyed by line tag.
#[derive(Debug, Clone)]
pub struct DirectCache {
    /// `log2(line)`, so the per-access line math is a shift, not a
    /// division by a runtime value.
    line_shift: u32,
    /// `sets - 1`; sets is a power of two, so modulo becomes a mask.
    set_mask: u64,
    tags: Vec<u64>,
    hits: u64,
    misses: u64,
}

const EMPTY: u64 = u64::MAX;

impl DirectCache {
    /// Creates an empty cache.
    ///
    /// # Panics
    /// Panics if the geometry is not power-of-two sized.
    pub fn new(geom: CacheGeom) -> DirectCache {
        assert!(geom.size.is_power_of_two() && geom.line.is_power_of_two());
        assert!(geom.size >= geom.line);
        DirectCache {
            line_shift: geom.line.trailing_zeros(),
            set_mask: geom.sets() - 1,
            tags: vec![EMPTY; geom.sets() as usize],
            hits: 0,
            misses: 0,
        }
    }

    /// Accesses `addr`; returns true on hit. Misses fill the line.
    #[inline]
    pub fn access(&mut self, addr: u64) -> bool {
        let line = addr >> self.line_shift;
        let set = (line & self.set_mask) as usize;
        if self.tags[set] == line {
            self.hits += 1;
            true
        } else {
            self.tags[set] = line;
            self.misses += 1;
            false
        }
    }

    /// (hits, misses) so far.
    pub fn stats(&self) -> (u64, u64) {
        (self.hits, self.misses)
    }

    /// Clears contents and statistics.
    pub fn reset(&mut self) {
        self.tags.fill(EMPTY);
        self.hits = 0;
        self.misses = 0;
    }

    /// Exports the full cache state (line tags, hits, misses) so a
    /// snapshot can make a resumed run's timing bit-identical.
    pub fn export_state(&self) -> (Vec<u64>, u64, u64) {
        (self.tags.clone(), self.hits, self.misses)
    }

    /// Restores a previously exported state. Ignores a tag vector of the
    /// wrong length (different geometry) rather than corrupting the sets.
    pub fn restore_state(&mut self, tags: &[u64], hits: u64, misses: u64) {
        if tags.len() == self.tags.len() {
            self.tags.copy_from_slice(tags);
        }
        self.hits = hits;
        self.misses = misses;
    }
}

/// Latency parameters of the hardware model.
#[derive(Debug, Clone, Copy)]
pub struct HwParams {
    /// Extra cycles on an L1 miss that hits L2.
    pub l2_latency: u64,
    /// Extra cycles on an L2 miss (memory access).
    pub mem_latency: u64,
    /// L1 data cache geometry.
    pub l1d: CacheGeom,
    /// L2 cache geometry.
    pub l2: CacheGeom,
    /// Nominal clock in GHz used to convert cycles to wall-clock time.
    pub ghz: f64,
}

impl Default for HwParams {
    fn default() -> Self {
        HwParams {
            l2_latency: 10,
            mem_latency: 60,
            l1d: CacheGeom {
                size: 32 * 1024,
                line: 64,
            },
            l2: CacheGeom {
                size: 512 * 1024,
                line: 64,
            },
            ghz: 2.5,
        }
    }
}

/// The per-machine hardware timing state.
#[derive(Debug, Clone)]
pub struct HwModel {
    params: HwParams,
    l1d: DirectCache,
    l2: DirectCache,
}

impl Default for HwModel {
    fn default() -> Self {
        HwModel::new(HwParams::default())
    }
}

impl HwModel {
    /// Creates a model with the given parameters.
    pub fn new(params: HwParams) -> HwModel {
        HwModel {
            l1d: DirectCache::new(params.l1d),
            l2: DirectCache::new(params.l2),
            params,
        }
    }

    /// Base execution cost of an instruction, before memory penalties.
    pub fn insn_cost(insn: &Insn) -> u64 {
        match insn {
            Insn::AluRR(AluOp::Udiv | AluOp::Urem, ..)
            | Insn::AluRI(AluOp::Udiv | AluOp::Urem, ..) => 20,
            Insn::AluRR(AluOp::Imul, ..) | Insn::AluRI(AluOp::Imul, ..) => 3,
            Insn::FpRR(FpOp::Div | FpOp::Sqrt, ..) => 15,
            Insn::FpRR(..) | Insn::Cvtsi2sd(..) | Insn::Cvttsd2si(..) => 3,
            Insn::Mfence | Insn::LockXadd(..) | Insn::LockCmpXchg(..) | Insn::Xchg(..) => 8,
            // Bulk copy: streaming bandwidth, roughly 16 bytes per cycle.
            Insn::RepMovs => 16,
            Insn::Syscall => 100,
            _ => 1,
        }
    }

    /// Charges a data access; returns extra cycles.
    pub fn data_access(&mut self, addr: u64) -> u64 {
        if self.l1d.access(addr) {
            0
        } else if self.l2.access(addr) {
            self.params.l2_latency
        } else {
            self.params.mem_latency
        }
    }

    /// The configured parameters.
    pub fn params(&self) -> &HwParams {
        &self.params
    }

    /// Converts cycles to nanoseconds at the nominal clock.
    pub fn cycles_to_ns(&self, cycles: u64) -> u64 {
        (cycles as f64 / self.params.ghz) as u64
    }

    /// (L1 hits, L1 misses, L2 hits, L2 misses).
    pub fn cache_stats(&self) -> (u64, u64, u64, u64) {
        let (h1, m1) = self.l1d.stats();
        let (h2, m2) = self.l2.stats();
        (h1, m1, h2, m2)
    }

    /// Exports both cache levels' state (`[l1d, l2]`, each as the tuple
    /// [`DirectCache::export_state`] returns) for snapshot capture.
    pub fn export_state(&self) -> [(Vec<u64>, u64, u64); 2] {
        [self.l1d.export_state(), self.l2.export_state()]
    }

    /// Restores both cache levels from [`HwModel::export_state`] output.
    pub fn restore_state(&mut self, state: &[(Vec<u64>, u64, u64); 2]) {
        self.l1d.restore_state(&state[0].0, state[0].1, state[0].2);
        self.l2.restore_state(&state[1].0, state[1].1, state[1].2);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elfie_isa::{Mem, Reg};

    #[test]
    fn cache_hit_after_fill() {
        let mut c = DirectCache::new(CacheGeom {
            size: 1024,
            line: 64,
        });
        assert!(!c.access(0x1000));
        assert!(c.access(0x1000));
        assert!(c.access(0x103f), "same line");
        assert!(!c.access(0x1040), "next line");
        assert_eq!(c.stats(), (2, 2));
    }

    #[test]
    fn cache_conflict_eviction() {
        let mut c = DirectCache::new(CacheGeom {
            size: 1024,
            line: 64,
        });
        assert!(!c.access(0x0));
        assert!(!c.access(0x400), "maps to same set (size 1024)");
        assert!(!c.access(0x0), "evicted");
    }

    #[test]
    fn costs_reflect_instruction_class() {
        assert_eq!(HwModel::insn_cost(&Insn::Nop), 1);
        assert_eq!(
            HwModel::insn_cost(&Insn::AluRI(AluOp::Udiv, Reg::Rax, 3)),
            20
        );
        assert_eq!(
            HwModel::insn_cost(&Insn::LockXadd(Mem::base(Reg::Rax), Reg::Rbx)),
            8
        );
        assert!(HwModel::insn_cost(&Insn::Syscall) > 50);
    }

    #[test]
    fn miss_penalties_escalate() {
        let mut hw = HwModel::default();
        let cold = hw.data_access(0x10_0000);
        assert_eq!(cold, hw.params().mem_latency);
        let warm = hw.data_access(0x10_0000);
        assert_eq!(warm, 0);
    }

    #[test]
    fn cycles_to_ns_uses_clock() {
        let hw = HwModel::default();
        assert_eq!(hw.cycles_to_ns(2_500_000_000), 1_000_000_000);
    }
}
