//! Paged guest memory with per-page permissions and a software TLB.
//!
//! The guest address space is sparse: 4 KiB pages are materialised on
//! `map`, and every access checks both mapping and permission. Access
//! failures surface as [`MemError`] — this is how an ELFie that diverges
//! onto an un-captured page dies "ungracefully", as in the paper.
//!
//! ## Fast path
//!
//! Pages live in an arena (`Vec<Option<Page>>`) so a page keeps a stable
//! slot index for its whole lifetime; a `BTreeMap<page_base, slot>` maps
//! addresses to slots. A small direct-mapped software TLB — separate
//! read / write / fetch entry arrays — caches `(page_base → slot)`
//! translations so the hot interpreter loop skips the `BTreeMap` on
//! almost every access. The TLB is flushed whenever the layout changes
//! (`map` / `unmap` / `protect`), and the layout epoch lets execution
//! caches above this layer (the [`crate::bbcache`] block cache) notice
//! those changes lazily.
//!
//! ## Self-modifying code
//!
//! The block cache marks pages whose instructions it has pre-decoded via
//! [`Memory::watch_exec_page`]. Any write landing on a watched page —
//! including permission-ignoring loader/kernel writes — records the page
//! in a dirty-code list that the machine drains after each step to evict
//! overlapping blocks, keeping cached execution bit-identical.
//!
//! ## Copy-on-write frames
//!
//! A page's storage is a `Frame`: either `Owned` (a private buffer) or
//! `Shared` (an `Arc` into an immutable arena payload, mapped zero-copy
//! via [`Memory::map_shared_page`] — this is how a machine boots from a
//! fat pinball in O(mapped pages) refcount bumps instead of O(bytes)
//! copies). Every mutable-access path funnels through one helper that
//! checks the frame tag — the "shared bit" — and privatises a shared
//! frame on first write. Reads and fetches never care which variant they
//! hit, so execution over shared frames is bit-identical to execution
//! over deep copies; [`MaterializeStats`] counts what sharing saved.

use elfie_isa::{page_base, PAGE_SIZE};
use std::cell::Cell;
use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

/// An immutable, reference-counted page payload, shareable across
/// machines and threads (the same shape `elfie-pinball`'s arena hands
/// out).
pub type PageData = Arc<[u8; PAGE_SIZE as usize]>;

/// Page permissions (read / write / execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perm(u8);

impl Perm {
    /// No access.
    pub const NONE: Perm = Perm(0);
    /// Read-only.
    pub const R: Perm = Perm(1);
    /// Read + write.
    pub const RW: Perm = Perm(3);
    /// Read + execute.
    pub const RX: Perm = Perm(5);
    /// Read + write + execute.
    pub const RWX: Perm = Perm(7);

    /// True if reads are allowed.
    pub const fn can_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if writes are allowed.
    pub const fn can_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// True if instruction fetch is allowed.
    pub const fn can_exec(self) -> bool {
        self.0 & 4 != 0
    }

    /// The raw permission bits (bit0 read, bit1 write, bit2 exec) — the
    /// encoding pinball page records use.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Builds a permission from raw bits (masking unknown bits).
    pub const fn from_bits(bits: u8) -> Perm {
        Perm(bits & 7)
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' }
        )
    }
}

/// The kind of access that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    Read,
    Write,
    Exec,
}

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address is not mapped.
    Unmapped { addr: u64, access: Access },
    /// The page is mapped but the permission does not allow the access.
    Protection {
        addr: u64,
        access: Access,
        perm: Perm,
    },
}

impl MemError {
    /// The faulting address.
    pub fn addr(&self) -> u64 {
        match self {
            MemError::Unmapped { addr, .. } | MemError::Protection { addr, .. } => *addr,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr, access } => {
                write!(f, "{access:?} access to unmapped address {addr:#x}")
            }
            MemError::Protection { addr, access, perm } => {
                write!(
                    f,
                    "{access:?} access violates {perm} protection at {addr:#x}"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

/// Backing storage of one mapped page. The discriminant is the
/// copy-on-write "shared bit": `Shared` frames are immutable arena
/// payloads and are privatised to `Owned` on the first mutable access.
enum Frame {
    /// Private to this address space; writes mutate in place.
    Owned(Box<[u8; PAGE_SIZE as usize]>),
    /// Zero-copy view of an immutable shared payload.
    Shared(PageData),
}

impl Frame {
    #[inline]
    fn bytes(&self) -> &[u8; PAGE_SIZE as usize] {
        match self {
            Frame::Owned(b) => b,
            Frame::Shared(a) => a,
        }
    }
}

/// Materialization counters: what copy-on-write sharing saved (and cost)
/// over this memory's lifetime.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MaterializeStats {
    /// Pages ever mapped into this address space.
    pub pages_mapped: u64,
    /// Pages mapped zero-copy from shared payloads
    /// ([`Memory::map_shared_page`]).
    pub shared_pages: u64,
    /// Shared frames privatised by a first write.
    pub cow_breaks: u64,
    /// Pages injected on a fault rather than at load (lazy materialization;
    /// counted by the replayer via [`Memory::record_lazy_fault`]).
    pub lazy_faults: u64,
    /// Page bytes currently resident in private (`Owned`) frames.
    pub owned_bytes: u64,
    /// High-water mark of `owned_bytes` — the peak page bytes this address
    /// space actually allocated, as opposed to borrowed from the arena.
    pub peak_owned_bytes: u64,
}

impl MaterializeStats {
    /// Folds another machine's counters into this one. Sums every counter
    /// except `peak_owned_bytes`, which takes the maximum: machines run
    /// (or are measured) one at a time per worker, so the largest single
    /// peak is the meaningful residency figure.
    ///
    /// Adds saturate and the per-field fold is commutative + associative,
    /// so per-worker stats merge to the same totals in any order (the
    /// `stats_merge` proptest in `elfie` exercises this).
    pub fn accumulate(&mut self, other: &MaterializeStats) {
        self.pages_mapped = self.pages_mapped.saturating_add(other.pages_mapped);
        self.shared_pages = self.shared_pages.saturating_add(other.shared_pages);
        self.cow_breaks = self.cow_breaks.saturating_add(other.cow_breaks);
        self.lazy_faults = self.lazy_faults.saturating_add(other.lazy_faults);
        self.owned_bytes = self.owned_bytes.saturating_add(other.owned_bytes);
        self.peak_owned_bytes = self.peak_owned_bytes.max(other.peak_owned_bytes);
    }
}

struct Page {
    frame: Frame,
    base: u64,
    perm: Perm,
    /// Set while the block cache holds pre-decoded instructions from this
    /// page; writes then land the page in `dirty_code`.
    watched: bool,
}

impl Page {
    fn new(base: u64, perm: Perm) -> Page {
        Page {
            frame: Frame::Owned(Box::new([0u8; PAGE_SIZE as usize])),
            base,
            perm,
            watched: false,
        }
    }

    fn new_shared(base: u64, perm: Perm, data: PageData) -> Page {
        Page {
            frame: Frame::Shared(data),
            base,
            perm,
            watched: false,
        }
    }
}

/// Number of entries in each of the three TLB arrays (power of two).
const TLB_SIZE: usize = 64;

/// One direct-mapped TLB entry: a page base and its arena slot.
#[derive(Clone, Copy)]
struct TlbEntry {
    base: u64,
    slot: u32,
}

/// `u64::MAX` is never page-aligned, so it can never match a real base.
const TLB_INVALID: TlbEntry = TlbEntry {
    base: u64::MAX,
    slot: 0,
};

#[inline]
const fn access_index(access: Access) -> usize {
    match access {
        Access::Read => 0,
        Access::Write => 1,
        Access::Exec => 2,
    }
}

#[inline]
const fn tlb_set(base: u64) -> usize {
    ((base >> 12) as usize) & (TLB_SIZE - 1)
}

/// Sparse paged memory.
///
/// ```
/// use elfie_vm::mem::{Memory, Perm};
/// let mut m = Memory::new();
/// m.map_range(0x1000, 0x2000, Perm::RW)?;
/// m.write_u64(0x1ff8, 0xdead_beef)?;
/// assert_eq!(m.read_u64(0x1ff8)?, 0xdead_beef);
/// # Ok::<(), elfie_vm::mem::MemError>(())
/// ```
pub struct Memory {
    /// Page arena; a page's slot is stable for its whole mapped lifetime.
    slots: Vec<Option<Page>>,
    /// Free slots available for reuse.
    free: Vec<u32>,
    /// `page_base → slot`, the authoritative mapping.
    index: BTreeMap<u64, u32>,
    /// Software TLB, one direct-mapped array per access kind. `Cell` so
    /// the `&self` read/fetch path can fill entries.
    tlb: [[Cell<TlbEntry>; TLB_SIZE]; 3],
    tlb_enabled: bool,
    tlb_hits: Cell<u64>,
    tlb_misses: Cell<u64>,
    /// Bumped on every map/unmap/protect; lets higher-level caches notice
    /// layout changes lazily.
    layout_epoch: u64,
    /// Bases of watched (code-cached) pages that have been written to
    /// since the last [`Memory::take_dirty_code`].
    dirty_code: Vec<u64>,
    /// Copy-on-write materialization counters.
    mat: MaterializeStats,
}

impl Default for Memory {
    fn default() -> Memory {
        Memory::new()
    }
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.index.len())
            .finish()
    }
}

/// Single-page fast path for a fixed-width little-endian read: one TLB
/// resolve plus a direct slice load. Accesses straddling a page boundary
/// fall back to the general byte copier.
macro_rules! read_le {
    ($self:expr, $addr:expr, $ty:ty, $n:literal) => {{
        let off = ($addr % PAGE_SIZE) as usize;
        if off + $n <= PAGE_SIZE as usize {
            let slot = $self.resolve($addr, Access::Read)?;
            let d = &$self.page_bytes(slot)[off..off + $n];
            Ok(<$ty>::from_le_bytes(d.try_into().expect("sized slice")))
        } else {
            let mut b = [0u8; $n];
            $self.read_bytes($addr, &mut b)?;
            Ok(<$ty>::from_le_bytes(b))
        }
    }};
}

/// Single-page fast path for a fixed-width little-endian write; mirrors
/// [`read_le!`] and keeps self-modifying-code tracking via `note_write`.
macro_rules! write_le {
    ($self:expr, $addr:expr, $v:expr, $n:literal) => {{
        let off = ($addr % PAGE_SIZE) as usize;
        if off + $n <= PAGE_SIZE as usize {
            let slot = $self.resolve($addr, Access::Write)?;
            $self.page_bytes_mut(slot)[off..off + $n].copy_from_slice(&$v.to_le_bytes());
            $self.note_write(slot);
            Ok(())
        } else {
            $self.write_bytes($addr, &$v.to_le_bytes())
        }
    }};
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory {
            slots: Vec::new(),
            free: Vec::new(),
            index: BTreeMap::new(),
            tlb: std::array::from_fn(|_| std::array::from_fn(|_| Cell::new(TLB_INVALID))),
            tlb_enabled: true,
            tlb_hits: Cell::new(0),
            tlb_misses: Cell::new(0),
            layout_epoch: 0,
            dirty_code: Vec::new(),
            mat: MaterializeStats::default(),
        }
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.index.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.index.len() as u64 * PAGE_SIZE
    }

    /// True if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.index.contains_key(&page_base(addr))
    }

    /// The permission of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: u64) -> Option<Perm> {
        self.index.get(&page_base(addr)).map(|&s| self.page(s).perm)
    }

    #[inline]
    fn page(&self, slot: u32) -> &Page {
        self.slots[slot as usize].as_ref().expect("live slot")
    }

    #[inline]
    fn page_mut(&mut self, slot: u32) -> &mut Page {
        self.slots[slot as usize].as_mut().expect("live slot")
    }

    /// The page's bytes, whichever frame variant backs them.
    #[inline]
    fn page_bytes(&self, slot: u32) -> &[u8; PAGE_SIZE as usize] {
        self.page(slot).frame.bytes()
    }

    /// Mutable access to the page's bytes. This is the single CoW choke
    /// point: a `Shared` frame is privatised (copied once, counted) here,
    /// so every writer — checked, unchecked, install — sees an `Owned`
    /// frame. After the first write the tag check is a predicted-not-taken
    /// branch, which keeps the PR 3 write fast path intact.
    #[inline]
    fn page_bytes_mut(&mut self, slot: u32) -> &mut [u8; PAGE_SIZE as usize] {
        let page = self.slots[slot as usize].as_mut().expect("live slot");
        if let Frame::Shared(shared) = &page.frame {
            page.frame = Frame::Owned(Box::new(**shared));
            self.mat.cow_breaks += 1;
            self.mat.owned_bytes += PAGE_SIZE;
            self.mat.peak_owned_bytes = self.mat.peak_owned_bytes.max(self.mat.owned_bytes);
        }
        match &mut page.frame {
            Frame::Owned(b) => b,
            Frame::Shared(_) => unreachable!("frame was just privatised"),
        }
    }

    /// Materialization counters for this address space.
    pub fn materialize_stats(&self) -> MaterializeStats {
        self.mat
    }

    /// Counts one page injected on-fault instead of at load (called by
    /// replay harnesses that materialise pages lazily).
    pub fn record_lazy_fault(&mut self) {
        self.mat.lazy_faults += 1;
    }

    /// Accounts for a freshly created `Owned` frame.
    fn note_owned_alloc(&mut self) {
        self.mat.owned_bytes += PAGE_SIZE;
        self.mat.peak_owned_bytes = self.mat.peak_owned_bytes.max(self.mat.owned_bytes);
    }

    /// Flushes the software TLB (all three access kinds).
    pub fn flush_tlb(&self) {
        for kind in &self.tlb {
            for e in kind {
                e.set(TLB_INVALID);
            }
        }
    }

    /// Enables or disables the software TLB (used by benchmark ablations;
    /// disabling flushes it so stale entries cannot linger).
    pub fn set_tlb_enabled(&mut self, on: bool) {
        self.tlb_enabled = on;
        self.flush_tlb();
    }

    /// `(hits, misses)` of the software TLB since creation.
    pub fn tlb_stats(&self) -> (u64, u64) {
        (self.tlb_hits.get(), self.tlb_misses.get())
    }

    /// Monotone counter bumped on every layout change (map / unmap /
    /// protect). Execution caches keyed on decoded code compare this to
    /// notice remappings lazily.
    pub fn layout_epoch(&self) -> u64 {
        self.layout_epoch
    }

    fn bump_layout(&mut self) {
        self.layout_epoch += 1;
        self.flush_tlb();
    }

    /// Marks the page containing `addr` as holding cached decoded code.
    /// Returns false (and does nothing) if the page is not mapped.
    pub fn watch_exec_page(&mut self, addr: u64) -> bool {
        let base = page_base(addr);
        match self.index.get(&base).copied() {
            Some(slot) => {
                self.page_mut(slot).watched = true;
                true
            }
            None => false,
        }
    }

    /// True if a watched page has been written to since the last
    /// [`Memory::take_dirty_code`].
    #[inline]
    pub fn has_dirty_code(&self) -> bool {
        !self.dirty_code.is_empty()
    }

    /// Takes the bases of watched pages written to since the last call.
    /// Taking a page also un-watches it; the code cache re-watches pages
    /// it still (re-)caches blocks from.
    pub fn take_dirty_code(&mut self) -> Vec<u64> {
        std::mem::take(&mut self.dirty_code)
    }

    /// Records a write into `slot` for self-modifying-code tracking.
    #[inline]
    fn note_write(&mut self, slot: u32) {
        if self.page(slot).watched {
            let base = self.page(slot).base;
            self.page_mut(slot).watched = false;
            self.dirty_code.push(base);
        }
    }

    /// Resolves `addr` to an arena slot, checking `access` permission.
    /// Consults the TLB first; a miss falls through to the `BTreeMap` and
    /// fills the entry.
    #[inline]
    fn resolve(&self, addr: u64, access: Access) -> Result<u32, MemError> {
        let base = page_base(addr);
        if self.tlb_enabled {
            let e = self.tlb[access_index(access)][tlb_set(base)].get();
            if e.base == base {
                self.tlb_hits.set(self.tlb_hits.get() + 1);
                return Ok(e.slot);
            }
        }
        self.resolve_slow(addr, base, access)
    }

    fn resolve_slow(&self, addr: u64, base: u64, access: Access) -> Result<u32, MemError> {
        let slot = *self
            .index
            .get(&base)
            .ok_or(MemError::Unmapped { addr, access })?;
        let perm = self.page(slot).perm;
        let ok = match access {
            Access::Read => perm.can_read(),
            Access::Write => perm.can_write(),
            Access::Exec => perm.can_exec(),
        };
        if !ok {
            return Err(MemError::Protection { addr, access, perm });
        }
        if self.tlb_enabled {
            self.tlb_misses.set(self.tlb_misses.get() + 1);
            self.tlb[access_index(access)][tlb_set(base)].set(TlbEntry { base, slot });
        }
        Ok(slot)
    }

    /// Inserts `page` into a free or fresh slot and indexes it.
    fn insert_page(&mut self, base: u64, page: Page) {
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(page);
                s
            }
            None => {
                self.slots.push(Some(page));
                (self.slots.len() - 1) as u32
            }
        };
        self.index.insert(base, slot);
        self.mat.pages_mapped += 1;
    }

    /// Maps the page containing `addr` with permission `perm`.
    /// Re-mapping an existing page keeps its contents and updates the
    /// permission.
    pub fn map_page(&mut self, addr: u64, perm: Perm) {
        let base = page_base(addr);
        match self.index.get(&base).copied() {
            Some(slot) => self.page_mut(slot).perm = perm,
            None => {
                self.insert_page(base, Page::new(base, perm));
                self.note_owned_alloc();
            }
        }
        self.bump_layout();
    }

    /// Maps the page containing `addr` zero-copy over an immutable shared
    /// payload: the page borrows `data` until a first write privatises it.
    /// Re-mapping an existing page replaces its contents and permission
    /// (the shared bytes become the page's contents, so a watched page is
    /// recorded as dirty code exactly like a whole-page write).
    pub fn map_shared_page(&mut self, addr: u64, perm: Perm, data: PageData) {
        let base = page_base(addr);
        match self.index.get(&base).copied() {
            Some(slot) => {
                if matches!(self.page(slot).frame, Frame::Owned(_)) {
                    self.mat.owned_bytes -= PAGE_SIZE;
                }
                let page = self.page_mut(slot);
                page.frame = Frame::Shared(data);
                page.perm = perm;
                self.note_write(slot);
            }
            None => self.insert_page(base, Page::new_shared(base, perm, data)),
        }
        self.mat.shared_pages += 1;
        self.bump_layout();
    }

    /// Maps every page overlapping `[start, end)`.
    ///
    /// # Errors
    /// Returns an error when `end <= start`.
    pub fn map_range(&mut self, start: u64, end: u64, perm: Perm) -> Result<(), MemError> {
        if end <= start {
            return Err(MemError::Unmapped {
                addr: start,
                access: Access::Write,
            });
        }
        let mut p = page_base(start);
        while p < end {
            self.map_page(p, perm);
            p += PAGE_SIZE;
        }
        Ok(())
    }

    /// Unmaps the page containing `addr` (no-op if not mapped). Returns the
    /// page contents if it was mapped, so callers can relocate pages (the
    /// ELFie startup stack-remap does this).
    pub fn unmap_page(&mut self, addr: u64) -> Option<Box<[u8; PAGE_SIZE as usize]>> {
        let base = page_base(addr);
        let slot = self.index.remove(&base)?;
        let page = self.slots[slot as usize].take().expect("live slot");
        self.free.push(slot);
        self.bump_layout();
        Some(match page.frame {
            Frame::Owned(b) => {
                self.mat.owned_bytes -= PAGE_SIZE;
                b
            }
            // Relocating a never-written shared page pays its copy here.
            Frame::Shared(a) => Box::new(*a),
        })
    }

    /// Unmaps every page overlapping `[start, end)`.
    pub fn unmap_range(&mut self, start: u64, end: u64) {
        let mut p = page_base(start);
        while p < end {
            self.unmap_page(p);
            p += PAGE_SIZE;
        }
    }

    /// Changes the permission of all mapped pages in `[start, end)`.
    pub fn protect_range(&mut self, start: u64, end: u64, perm: Perm) {
        let mut p = page_base(start);
        let mut changed = false;
        while p < end {
            if let Some(slot) = self.index.get(&p).copied() {
                self.page_mut(slot).perm = perm;
                changed = true;
            }
            p += PAGE_SIZE;
        }
        if changed {
            self.bump_layout();
        }
    }

    /// Iterates over `(page_base, perm, data)` for all mapped pages in
    /// ascending address order. This is what the PinPlay logger walks when
    /// writing a fat pinball's memory image.
    pub fn pages(&self) -> impl Iterator<Item = (u64, Perm, &[u8; PAGE_SIZE as usize])> {
        self.index.iter().map(|(&a, &s)| {
            let p = self.page(s);
            (a, p.perm, p.frame.bytes())
        })
    }

    /// Iterates mapped pages exposing their sharing status: the fourth
    /// element is `Some(payload)` while the frame is still a zero-copy
    /// `Shared` view of an arena payload, `None` once a write privatised
    /// it. Snapshot capture uses the `Arc` identity to detect clean pages
    /// in O(1) instead of comparing bytes.
    pub fn pages_with_sharing(
        &self,
    ) -> impl Iterator<Item = (u64, Perm, &[u8; PAGE_SIZE as usize], Option<&PageData>)> {
        self.index.iter().map(|(&a, &s)| {
            let p = self.page(s);
            let shared = match &p.frame {
                Frame::Shared(data) => Some(data),
                Frame::Owned(_) => None,
            };
            (a, p.perm, p.frame.bytes(), shared)
        })
    }

    /// Reads `buf.len()` bytes starting at `addr` (may cross pages).
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let off = (addr % PAGE_SIZE) as usize;
        if buf.is_empty() {
            return Ok(());
        }
        if off + buf.len() <= PAGE_SIZE as usize {
            let slot = self.resolve(addr, Access::Read)?;
            buf.copy_from_slice(&self.page_bytes(slot)[off..off + buf.len()]);
            return Ok(());
        }
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let slot = self.resolve(a, Access::Read)?;
            let off = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
            buf[pos..pos + n].copy_from_slice(&self.page_bytes(slot)[off..off + n]);
            pos += n;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr` (may cross pages).
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let off = (addr % PAGE_SIZE) as usize;
        if buf.is_empty() {
            return Ok(());
        }
        if off + buf.len() <= PAGE_SIZE as usize {
            let slot = self.resolve(addr, Access::Write)?;
            self.page_bytes_mut(slot)[off..off + buf.len()].copy_from_slice(buf);
            self.note_write(slot);
            return Ok(());
        }
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let slot = self.resolve(a, Access::Write)?;
            let off = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
            self.page_bytes_mut(slot)[off..off + n].copy_from_slice(&buf[pos..pos + n]);
            self.note_write(slot);
            pos += n;
        }
        Ok(())
    }

    /// Writes bytes ignoring the write permission (used by loaders and by
    /// the kernel when materialising syscall side effects into read-only
    /// mappings). Still participates in self-modifying-code tracking:
    /// injected bytes landing on cached code pages must evict blocks.
    pub fn write_bytes_unchecked(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let slot = *self.index.get(&page_base(a)).ok_or(MemError::Unmapped {
                addr: a,
                access: Access::Write,
            })?;
            let off = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
            self.page_bytes_mut(slot)[off..off + n].copy_from_slice(&buf[pos..pos + n]);
            self.note_write(slot);
            pos += n;
        }
        Ok(())
    }

    /// Fetches up to `buf.len()` instruction bytes at `addr`, checking
    /// execute permission. Returns the number of bytes fetched (shorter at
    /// the end of an executable mapping so the decoder can report
    /// truncation). Rides the same TLB as data accesses, with its own
    /// fetch-entry array.
    pub fn fetch(&self, addr: u64, buf: &mut [u8]) -> Result<usize, MemError> {
        let off = (addr % PAGE_SIZE) as usize;
        if !buf.is_empty() && off + buf.len() <= PAGE_SIZE as usize {
            let slot = self.resolve(addr, Access::Exec)?;
            buf.copy_from_slice(&self.page_bytes(slot)[off..off + buf.len()]);
            return Ok(buf.len());
        }
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            match self.resolve(a, Access::Exec) {
                Ok(slot) => {
                    let off = (a % PAGE_SIZE) as usize;
                    let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
                    buf[pos..pos + n].copy_from_slice(&self.page_bytes(slot)[off..off + n]);
                    pos += n;
                }
                Err(e) => {
                    if pos == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(pos)
    }

    /// Reads a `u8`.
    #[inline]
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemError> {
        let slot = self.resolve(addr, Access::Read)?;
        Ok(self.page_bytes(slot)[(addr % PAGE_SIZE) as usize])
    }

    /// Reads a little-endian `u16`.
    #[inline]
    pub fn read_u16(&self, addr: u64) -> Result<u16, MemError> {
        read_le!(self, addr, u16, 2)
    }

    /// Reads a little-endian `u32`.
    #[inline]
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        read_le!(self, addr, u32, 4)
    }

    /// Reads a little-endian `u64`.
    #[inline]
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        read_le!(self, addr, u64, 8)
    }

    /// Writes a `u8`.
    #[inline]
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        let slot = self.resolve(addr, Access::Write)?;
        self.page_bytes_mut(slot)[(addr % PAGE_SIZE) as usize] = v;
        self.note_write(slot);
        Ok(())
    }

    /// Writes a little-endian `u16`.
    #[inline]
    pub fn write_u16(&mut self, addr: u64, v: u16) -> Result<(), MemError> {
        write_le!(self, addr, v, 2)
    }

    /// Writes a little-endian `u32`.
    #[inline]
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        write_le!(self, addr, v, 4)
    }

    /// Writes a little-endian `u64`.
    #[inline]
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        write_le!(self, addr, v, 8)
    }

    /// Reads a NUL-terminated string of at most `max` bytes.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String, MemError> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let b = self.read_u8(addr + i)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// Copies a whole page of bytes into the page containing `dst_page`
    /// (which must be mapped), preserving its permission.
    pub fn install_page(
        &mut self,
        dst_page: u64,
        bytes: &[u8; PAGE_SIZE as usize],
    ) -> Result<(), MemError> {
        let slot = *self
            .index
            .get(&page_base(dst_page))
            .ok_or(MemError::Unmapped {
                addr: dst_page,
                access: Access::Write,
            })?;
        self.page_bytes_mut(slot).copy_from_slice(bytes);
        self.note_write(slot);
        Ok(())
    }

    /// Returns the lowest mapped address at or above `addr`, if any.
    pub fn next_mapped(&self, addr: u64) -> Option<u64> {
        self.index.range(page_base(addr)..).next().map(|(&a, _)| a)
    }

    /// Finds a gap of `len` bytes starting the search at `hint`, for
    /// mmap-style allocation. The returned range is page-aligned and does
    /// not overlap any mapping.
    pub fn find_gap(&self, hint: u64, len: u64) -> u64 {
        let len = elfie_isa::page_align_up(len.max(1));
        let mut candidate = page_base(hint);
        loop {
            // Scan mapped pages in [candidate, candidate+len).
            match self.index.range(candidate..candidate + len).next() {
                None => return candidate,
                Some((&used, _)) => candidate = used + PAGE_SIZE,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new();
        assert_eq!(
            m.read_u8(0x5000),
            Err(MemError::Unmapped {
                addr: 0x5000,
                access: Access::Read
            })
        );
    }

    #[test]
    fn permissions_enforced() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::R);
        assert!(m.read_u8(0x1000).is_ok());
        assert!(matches!(
            m.write_u8(0x1000, 1),
            Err(MemError::Protection { .. })
        ));
        let mut buf = [0u8; 4];
        assert!(matches!(
            m.fetch(0x1000, &mut buf),
            Err(MemError::Protection { .. })
        ));
        m.protect_range(0x1000, 0x2000, Perm::RX);
        assert!(m.fetch(0x1000, &mut buf).is_ok());
    }

    #[test]
    fn cross_page_read_write() {
        let mut m = Memory::new();
        m.map_range(0x1000, 0x3000, Perm::RW).unwrap();
        let data: Vec<u8> = (0..=255u8).collect();
        m.write_bytes(0x1f80, &data).unwrap();
        let mut back = vec![0u8; 256];
        m.read_bytes(0x1f80, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn cross_page_write_fails_at_boundary() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RW);
        // Second page unmapped: the write must fail.
        assert!(m.write_bytes(0x1ffc, &[1, 2, 3, 4, 5, 6, 7, 8]).is_err());
    }

    #[test]
    fn fetch_truncates_at_mapping_end() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RX);
        let mut buf = [0u8; 16];
        let n = m.fetch(0x1ff8, &mut buf).unwrap();
        assert_eq!(n, 8);
    }

    #[test]
    fn unmap_returns_contents() {
        let mut m = Memory::new();
        m.map_page(0x4000, Perm::RW);
        m.write_u64(0x4010, 99).unwrap();
        let page = m.unmap_page(0x4000).expect("was mapped");
        assert_eq!(u64::from_le_bytes(page[0x10..0x18].try_into().unwrap()), 99);
        assert!(!m.is_mapped(0x4000));
    }

    #[test]
    fn remap_preserves_contents() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RW);
        m.write_u64(0x1000, 7).unwrap();
        m.map_page(0x1000, Perm::R);
        assert_eq!(m.read_u64(0x1000).unwrap(), 7);
        assert_eq!(m.perm_at(0x1000), Some(Perm::R));
    }

    #[test]
    fn find_gap_skips_mappings() {
        let mut m = Memory::new();
        m.map_range(0x10000, 0x12000, Perm::RW).unwrap();
        let g = m.find_gap(0x10000, 0x1000);
        assert_eq!(g, 0x12000);
        let g2 = m.find_gap(0x20000, 0x4000);
        assert_eq!(g2, 0x20000);
    }

    #[test]
    fn read_cstr_stops_at_nul() {
        let mut m = Memory::new();
        m.map_page(0, Perm::RW);
        m.write_bytes(0x10, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(0x10, 64).unwrap(), "hello");
    }

    #[test]
    fn u16_roundtrip_and_cross_page() {
        let mut m = Memory::new();
        m.map_range(0x1000, 0x3000, Perm::RW).unwrap();
        m.write_u16(0x1004, 0xbeef).unwrap();
        assert_eq!(m.read_u16(0x1004).unwrap(), 0xbeef);
        // Straddling the page boundary at 0x2000.
        m.write_u16(0x1fff, 0xa55a).unwrap();
        assert_eq!(m.read_u16(0x1fff).unwrap(), 0xa55a);
        assert_eq!(m.read_u8(0x1fff).unwrap(), 0x5a);
        assert_eq!(m.read_u8(0x2000).unwrap(), 0xa5);
    }

    #[test]
    fn u16_cross_page_fails_when_second_page_unmapped() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RW);
        assert!(m.write_u16(0x1fff, 1).is_err());
        assert!(m.read_u16(0x1fff).is_err());
    }

    #[test]
    fn tlb_hits_accumulate_and_flush_on_layout_change() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RW);
        m.write_u64(0x1000, 1).unwrap();
        let (h0, _) = m.tlb_stats();
        for _ in 0..10 {
            m.read_u64(0x1000).unwrap();
        }
        let (h1, _) = m.tlb_stats();
        assert!(h1 >= h0 + 9, "repeated reads hit the TLB");

        let e0 = m.layout_epoch();
        m.map_page(0x2000, Perm::RW);
        assert!(m.layout_epoch() > e0, "map bumps the layout epoch");
        let (_, mi0) = m.tlb_stats();
        m.read_u64(0x1000).unwrap();
        let (_, mi1) = m.tlb_stats();
        assert_eq!(mi1, mi0 + 1, "map flushed the TLB");
    }

    #[test]
    fn tlb_respects_permission_kind() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::R);
        // Warm the read entry; writes must still be refused.
        assert!(m.read_u8(0x1000).is_ok());
        assert!(m.read_u8(0x1000).is_ok());
        assert!(matches!(
            m.write_u8(0x1000, 1),
            Err(MemError::Protection { .. })
        ));
    }

    #[test]
    fn disabled_tlb_still_correct() {
        let mut m = Memory::new();
        m.set_tlb_enabled(false);
        m.map_range(0x1000, 0x3000, Perm::RW).unwrap();
        m.write_u64(0x1ffc, 0x1122334455667788).unwrap();
        assert_eq!(m.read_u64(0x1ffc).unwrap(), 0x1122334455667788);
        assert_eq!(m.tlb_stats(), (0, 0));
    }

    #[test]
    fn watched_page_writes_record_dirty_code() {
        let mut m = Memory::new();
        m.map_range(0x1000, 0x3000, Perm::RWX).unwrap();
        assert!(m.watch_exec_page(0x1000));
        assert!(!m.watch_exec_page(0x9000), "unmapped page not watchable");
        assert!(!m.has_dirty_code());

        m.write_u8(0x2f00, 1).unwrap(); // unwatched page: no dirt
        assert!(!m.has_dirty_code());

        m.write_u8(0x1f00, 1).unwrap();
        assert_eq!(m.take_dirty_code(), vec![0x1000]);
        assert!(!m.has_dirty_code());

        // Taking un-watches: further writes to the page are quiet until
        // re-watched.
        m.write_u8(0x1f01, 2).unwrap();
        assert!(!m.has_dirty_code());

        // Unchecked (loader/kernel) writes also trip the watch.
        m.watch_exec_page(0x1000);
        m.write_bytes_unchecked(0x1010, &[9]).unwrap();
        assert_eq!(m.take_dirty_code(), vec![0x1000]);

        // install_page replaces content wholesale: also dirty.
        m.watch_exec_page(0x1000);
        let page = [0u8; PAGE_SIZE as usize];
        m.install_page(0x1000, &page).unwrap();
        assert_eq!(m.take_dirty_code(), vec![0x1000]);
    }

    fn shared(fill: u8) -> PageData {
        Arc::new([fill; PAGE_SIZE as usize])
    }

    #[test]
    fn shared_pages_read_without_copying() {
        let mut m = Memory::new();
        let data = shared(0x5a);
        m.map_shared_page(0x1000, Perm::R, Arc::clone(&data));
        assert_eq!(m.read_u8(0x1234).unwrap(), 0x5a);
        let s = m.materialize_stats();
        assert_eq!(s.shared_pages, 1);
        assert_eq!(s.owned_bytes, 0, "no private bytes until a write");
        assert_eq!(s.cow_breaks, 0);
        // The mapping holds the payload itself, not a copy.
        assert_eq!(Arc::strong_count(&data), 2);
    }

    #[test]
    fn first_write_breaks_cow_and_preserves_the_shared_payload() {
        let mut m = Memory::new();
        let data = shared(0x11);
        m.map_shared_page(0x1000, Perm::RW, Arc::clone(&data));
        m.write_u8(0x1000, 0xff).unwrap();
        assert_eq!(m.read_u8(0x1000).unwrap(), 0xff);
        assert_eq!(m.read_u8(0x1001).unwrap(), 0x11, "rest copied over");
        assert_eq!(data[0], 0x11, "shared payload untouched");
        let s = m.materialize_stats();
        assert_eq!(s.cow_breaks, 1);
        assert_eq!(s.owned_bytes, PAGE_SIZE);
        assert_eq!(Arc::strong_count(&data), 1, "break dropped the borrow");

        // Further writes stay on the private frame.
        m.write_u8(0x1002, 1).unwrap();
        assert_eq!(m.materialize_stats().cow_breaks, 1);
    }

    #[test]
    fn machines_sharing_a_payload_diverge_privately() {
        let data = shared(7);
        let mut a = Memory::new();
        let mut b = Memory::new();
        a.map_shared_page(0x1000, Perm::RW, Arc::clone(&data));
        b.map_shared_page(0x1000, Perm::RW, Arc::clone(&data));
        a.write_u8(0x1000, 100).unwrap();
        assert_eq!(a.read_u8(0x1000).unwrap(), 100);
        assert_eq!(b.read_u8(0x1000).unwrap(), 7, "b still sees the original");
    }

    #[test]
    fn unchecked_writes_and_install_break_cow_too() {
        let mut m = Memory::new();
        m.map_shared_page(0x1000, Perm::R, shared(3));
        m.write_bytes_unchecked(0x1010, &[9]).unwrap();
        assert_eq!(m.materialize_stats().cow_breaks, 1);

        m.map_shared_page(0x2000, Perm::R, shared(4));
        m.install_page(0x2000, &[0u8; PAGE_SIZE as usize]).unwrap();
        assert_eq!(m.materialize_stats().cow_breaks, 2);
        assert_eq!(m.read_u8(0x2000).unwrap(), 0);
    }

    #[test]
    fn shared_remap_of_watched_page_records_dirty_code() {
        let mut m = Memory::new();
        m.map_range(0x1000, 0x2000, Perm::RWX).unwrap();
        assert!(m.watch_exec_page(0x1000));
        m.map_shared_page(0x1000, Perm::RX, shared(0x90));
        assert_eq!(m.take_dirty_code(), vec![0x1000]);
    }

    #[test]
    fn unmap_shared_page_returns_contents() {
        let mut m = Memory::new();
        m.map_shared_page(0x3000, Perm::RW, shared(0xab));
        let page = m.unmap_page(0x3000).expect("was mapped");
        assert!(page.iter().all(|&x| x == 0xab));
        assert_eq!(m.materialize_stats().owned_bytes, 0);
    }

    #[test]
    fn owned_bytes_track_map_and_unmap() {
        let mut m = Memory::new();
        m.map_range(0x1000, 0x3000, Perm::RW).unwrap();
        let s = m.materialize_stats();
        assert_eq!(s.owned_bytes, 2 * PAGE_SIZE);
        assert_eq!(s.pages_mapped, 2);
        m.unmap_page(0x1000);
        let s = m.materialize_stats();
        assert_eq!(s.owned_bytes, PAGE_SIZE);
        assert_eq!(s.peak_owned_bytes, 2 * PAGE_SIZE, "peak sticks");
    }

    #[test]
    fn unmap_reuses_slots_safely() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RW);
        m.write_u64(0x1000, 42).unwrap();
        m.unmap_page(0x1000);
        m.map_page(0x5000, Perm::RW);
        // Recycled slot must come back zeroed under the new base.
        assert_eq!(m.read_u64(0x5000).unwrap(), 0);
        assert!(!m.is_mapped(0x1000));
    }

    proptest! {
        #[test]
        fn rw_roundtrip(addr in 0u64..0x8000, data in proptest::collection::vec(any::<u8>(), 1..512)) {
            let mut m = Memory::new();
            m.map_range(0, 0x10000, Perm::RW).unwrap();
            m.write_bytes(addr, &data).unwrap();
            let mut back = vec![0u8; data.len()];
            m.read_bytes(addr, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }

        #[test]
        fn u64_roundtrip(addr in 0u64..0xff8, v in any::<u64>()) {
            let mut m = Memory::new();
            m.map_page(0, Perm::RW);
            m.write_u64(addr, v).unwrap();
            prop_assert_eq!(m.read_u64(addr).unwrap(), v);
        }

        #[test]
        fn u16_roundtrip(addr in 0u64..0x1ffe, v in any::<u16>()) {
            let mut m = Memory::new();
            m.map_range(0, 0x2000, Perm::RW).unwrap();
            m.write_u16(addr, v).unwrap();
            prop_assert_eq!(m.read_u16(addr).unwrap(), v);
        }

        #[test]
        fn tlb_agrees_with_slow_path(ops in proptest::collection::vec((0u64..0x6000, any::<u8>()), 1..64)) {
            // The same op sequence on a TLB'd and a TLB-less memory must
            // produce identical contents and results.
            let mut fast = Memory::new();
            let mut slow = Memory::new();
            slow.set_tlb_enabled(false);
            for m in [&mut fast, &mut slow] {
                m.map_range(0, 0x4000, Perm::RW).unwrap();
            }
            for (addr, v) in ops {
                prop_assert_eq!(fast.write_u8(addr, v), slow.write_u8(addr, v));
                prop_assert_eq!(fast.read_u8(addr).ok(), slow.read_u8(addr).ok());
            }
            let a: Vec<_> = fast.pages().map(|(b, p, d)| (b, p, d.to_vec())).collect();
            let b: Vec<_> = slow.pages().map(|(b, p, d)| (b, p, d.to_vec())).collect();
            prop_assert_eq!(a, b);
        }
    }
}
