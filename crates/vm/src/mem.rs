//! Paged guest memory with per-page permissions.
//!
//! The guest address space is sparse: 4 KiB pages are materialised on
//! `map`, and every access checks both mapping and permission. Access
//! failures surface as [`MemError`] — this is how an ELFie that diverges
//! onto an un-captured page dies "ungracefully", as in the paper.

use elfie_isa::{page_base, PAGE_SIZE};
use std::collections::BTreeMap;
use std::fmt;

/// Page permissions (read / write / execute).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Perm(u8);

impl Perm {
    /// No access.
    pub const NONE: Perm = Perm(0);
    /// Read-only.
    pub const R: Perm = Perm(1);
    /// Read + write.
    pub const RW: Perm = Perm(3);
    /// Read + execute.
    pub const RX: Perm = Perm(5);
    /// Read + write + execute.
    pub const RWX: Perm = Perm(7);

    /// True if reads are allowed.
    pub const fn can_read(self) -> bool {
        self.0 & 1 != 0
    }

    /// True if writes are allowed.
    pub const fn can_write(self) -> bool {
        self.0 & 2 != 0
    }

    /// True if instruction fetch is allowed.
    pub const fn can_exec(self) -> bool {
        self.0 & 4 != 0
    }

    /// The raw permission bits (bit0 read, bit1 write, bit2 exec) — the
    /// encoding pinball page records use.
    pub const fn bits(self) -> u8 {
        self.0
    }

    /// Builds a permission from raw bits (masking unknown bits).
    pub const fn from_bits(bits: u8) -> Perm {
        Perm(bits & 7)
    }
}

impl fmt::Display for Perm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.can_read() { 'r' } else { '-' },
            if self.can_write() { 'w' } else { '-' },
            if self.can_exec() { 'x' } else { '-' }
        )
    }
}

/// The kind of access that failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    Read,
    Write,
    Exec,
}

/// A memory access fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemError {
    /// The address is not mapped.
    Unmapped { addr: u64, access: Access },
    /// The page is mapped but the permission does not allow the access.
    Protection {
        addr: u64,
        access: Access,
        perm: Perm,
    },
}

impl MemError {
    /// The faulting address.
    pub fn addr(&self) -> u64 {
        match self {
            MemError::Unmapped { addr, .. } | MemError::Protection { addr, .. } => *addr,
        }
    }
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::Unmapped { addr, access } => {
                write!(f, "{access:?} access to unmapped address {addr:#x}")
            }
            MemError::Protection { addr, access, perm } => {
                write!(
                    f,
                    "{access:?} access violates {perm} protection at {addr:#x}"
                )
            }
        }
    }
}

impl std::error::Error for MemError {}

struct Page {
    data: Box<[u8; PAGE_SIZE as usize]>,
    perm: Perm,
}

impl Page {
    fn new(perm: Perm) -> Page {
        Page {
            data: Box::new([0u8; PAGE_SIZE as usize]),
            perm,
        }
    }
}

/// Sparse paged memory.
///
/// ```
/// use elfie_vm::mem::{Memory, Perm};
/// let mut m = Memory::new();
/// m.map_range(0x1000, 0x2000, Perm::RW)?;
/// m.write_u64(0x1ff8, 0xdead_beef)?;
/// assert_eq!(m.read_u64(0x1ff8)?, 0xdead_beef);
/// # Ok::<(), elfie_vm::mem::MemError>(())
/// ```
#[derive(Default)]
pub struct Memory {
    pages: BTreeMap<u64, Page>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory")
            .field("pages", &self.pages.len())
            .finish()
    }
}

impl Memory {
    /// Creates an empty address space.
    pub fn new() -> Memory {
        Memory::default()
    }

    /// Number of mapped pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Total mapped bytes.
    pub fn mapped_bytes(&self) -> u64 {
        self.pages.len() as u64 * PAGE_SIZE
    }

    /// True if the page containing `addr` is mapped.
    pub fn is_mapped(&self, addr: u64) -> bool {
        self.pages.contains_key(&page_base(addr))
    }

    /// The permission of the page containing `addr`, if mapped.
    pub fn perm_at(&self, addr: u64) -> Option<Perm> {
        self.pages.get(&page_base(addr)).map(|p| p.perm)
    }

    /// Maps the page containing `addr` with permission `perm`.
    /// Re-mapping an existing page keeps its contents and updates the
    /// permission.
    pub fn map_page(&mut self, addr: u64, perm: Perm) {
        let base = page_base(addr);
        self.pages
            .entry(base)
            .or_insert_with(|| Page::new(perm))
            .perm = perm;
    }

    /// Maps every page overlapping `[start, end)`.
    ///
    /// # Errors
    /// Returns an error when `end <= start`.
    pub fn map_range(&mut self, start: u64, end: u64, perm: Perm) -> Result<(), MemError> {
        if end <= start {
            return Err(MemError::Unmapped {
                addr: start,
                access: Access::Write,
            });
        }
        let mut p = page_base(start);
        while p < end {
            self.map_page(p, perm);
            p += PAGE_SIZE;
        }
        Ok(())
    }

    /// Unmaps the page containing `addr` (no-op if not mapped). Returns the
    /// page contents if it was mapped, so callers can relocate pages (the
    /// ELFie startup stack-remap does this).
    pub fn unmap_page(&mut self, addr: u64) -> Option<Box<[u8; PAGE_SIZE as usize]>> {
        self.pages.remove(&page_base(addr)).map(|p| p.data)
    }

    /// Unmaps every page overlapping `[start, end)`.
    pub fn unmap_range(&mut self, start: u64, end: u64) {
        let mut p = page_base(start);
        while p < end {
            self.pages.remove(&p);
            p += PAGE_SIZE;
        }
    }

    /// Changes the permission of all mapped pages in `[start, end)`.
    pub fn protect_range(&mut self, start: u64, end: u64, perm: Perm) {
        let mut p = page_base(start);
        while p < end {
            if let Some(page) = self.pages.get_mut(&p) {
                page.perm = perm;
            }
            p += PAGE_SIZE;
        }
    }

    /// Iterates over `(page_base, perm, data)` for all mapped pages in
    /// ascending address order. This is what the PinPlay logger walks when
    /// writing a fat pinball's memory image.
    pub fn pages(&self) -> impl Iterator<Item = (u64, Perm, &[u8; PAGE_SIZE as usize])> {
        self.pages.iter().map(|(&a, p)| (a, p.perm, &*p.data))
    }

    fn page_for(&self, addr: u64, access: Access) -> Result<&Page, MemError> {
        let page = self
            .pages
            .get(&page_base(addr))
            .ok_or(MemError::Unmapped { addr, access })?;
        let ok = match access {
            Access::Read => page.perm.can_read(),
            Access::Write => page.perm.can_write(),
            Access::Exec => page.perm.can_exec(),
        };
        if ok {
            Ok(page)
        } else {
            Err(MemError::Protection {
                addr,
                access,
                perm: page.perm,
            })
        }
    }

    fn page_for_mut(&mut self, addr: u64, access: Access) -> Result<&mut Page, MemError> {
        let page = self
            .pages
            .get_mut(&page_base(addr))
            .ok_or(MemError::Unmapped { addr, access })?;
        let ok = match access {
            Access::Read => page.perm.can_read(),
            Access::Write => page.perm.can_write(),
            Access::Exec => page.perm.can_exec(),
        };
        if ok {
            Ok(page)
        } else {
            Err(MemError::Protection {
                addr,
                access,
                perm: page.perm,
            })
        }
    }

    /// Reads `buf.len()` bytes starting at `addr` (may cross pages).
    pub fn read_bytes(&self, addr: u64, buf: &mut [u8]) -> Result<(), MemError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let page = self.page_for(a, Access::Read)?;
            let off = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
            buf[pos..pos + n].copy_from_slice(&page.data[off..off + n]);
            pos += n;
        }
        Ok(())
    }

    /// Writes `buf` starting at `addr` (may cross pages).
    pub fn write_bytes(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let page = self.page_for_mut(a, Access::Write)?;
            let off = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
            page.data[off..off + n].copy_from_slice(&buf[pos..pos + n]);
            pos += n;
        }
        Ok(())
    }

    /// Writes bytes ignoring the write permission (used by loaders and by
    /// the kernel when materialising syscall side effects into read-only
    /// mappings).
    pub fn write_bytes_unchecked(&mut self, addr: u64, buf: &[u8]) -> Result<(), MemError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            let page = self
                .pages
                .get_mut(&page_base(a))
                .ok_or(MemError::Unmapped {
                    addr: a,
                    access: Access::Write,
                })?;
            let off = (a % PAGE_SIZE) as usize;
            let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
            page.data[off..off + n].copy_from_slice(&buf[pos..pos + n]);
            pos += n;
        }
        Ok(())
    }

    /// Fetches up to `buf.len()` instruction bytes at `addr`, checking
    /// execute permission. Returns the number of bytes fetched (shorter at
    /// the end of an executable mapping so the decoder can report
    /// truncation).
    pub fn fetch(&self, addr: u64, buf: &mut [u8]) -> Result<usize, MemError> {
        let mut pos = 0usize;
        while pos < buf.len() {
            let a = addr + pos as u64;
            match self.page_for(a, Access::Exec) {
                Ok(page) => {
                    let off = (a % PAGE_SIZE) as usize;
                    let n = ((PAGE_SIZE as usize) - off).min(buf.len() - pos);
                    buf[pos..pos + n].copy_from_slice(&page.data[off..off + n]);
                    pos += n;
                }
                Err(e) => {
                    if pos == 0 {
                        return Err(e);
                    }
                    break;
                }
            }
        }
        Ok(pos)
    }

    /// Reads a `u8`.
    pub fn read_u8(&self, addr: u64) -> Result<u8, MemError> {
        let mut b = [0u8; 1];
        self.read_bytes(addr, &mut b)?;
        Ok(b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn read_u32(&self, addr: u64) -> Result<u32, MemError> {
        let mut b = [0u8; 4];
        self.read_bytes(addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Reads a little-endian `u64`.
    pub fn read_u64(&self, addr: u64) -> Result<u64, MemError> {
        let mut b = [0u8; 8];
        self.read_bytes(addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Writes a `u8`.
    pub fn write_u8(&mut self, addr: u64, v: u8) -> Result<(), MemError> {
        self.write_bytes(addr, &[v])
    }

    /// Writes a little-endian `u32`.
    pub fn write_u32(&mut self, addr: u64, v: u32) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Writes a little-endian `u64`.
    pub fn write_u64(&mut self, addr: u64, v: u64) -> Result<(), MemError> {
        self.write_bytes(addr, &v.to_le_bytes())
    }

    /// Reads a NUL-terminated string of at most `max` bytes.
    pub fn read_cstr(&self, addr: u64, max: usize) -> Result<String, MemError> {
        let mut out = Vec::new();
        for i in 0..max as u64 {
            let b = self.read_u8(addr + i)?;
            if b == 0 {
                break;
            }
            out.push(b);
        }
        Ok(String::from_utf8_lossy(&out).into_owned())
    }

    /// Copies a whole page of bytes into the page containing `dst_page`
    /// (which must be mapped), preserving its permission.
    pub fn install_page(
        &mut self,
        dst_page: u64,
        bytes: &[u8; PAGE_SIZE as usize],
    ) -> Result<(), MemError> {
        let page = self
            .pages
            .get_mut(&page_base(dst_page))
            .ok_or(MemError::Unmapped {
                addr: dst_page,
                access: Access::Write,
            })?;
        page.data.copy_from_slice(bytes);
        Ok(())
    }

    /// Returns the lowest mapped address at or above `addr`, if any.
    pub fn next_mapped(&self, addr: u64) -> Option<u64> {
        self.pages.range(page_base(addr)..).next().map(|(&a, _)| a)
    }

    /// Finds a gap of `len` bytes starting the search at `hint`, for
    /// mmap-style allocation. The returned range is page-aligned and does
    /// not overlap any mapping.
    pub fn find_gap(&self, hint: u64, len: u64) -> u64 {
        let len = elfie_isa::page_align_up(len.max(1));
        let mut candidate = page_base(hint);
        loop {
            // Scan mapped pages in [candidate, candidate+len).
            match self.pages.range(candidate..candidate + len).next() {
                None => return candidate,
                Some((&used, _)) => candidate = used + PAGE_SIZE,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn unmapped_access_faults() {
        let m = Memory::new();
        assert_eq!(
            m.read_u8(0x5000),
            Err(MemError::Unmapped {
                addr: 0x5000,
                access: Access::Read
            })
        );
    }

    #[test]
    fn permissions_enforced() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::R);
        assert!(m.read_u8(0x1000).is_ok());
        assert!(matches!(
            m.write_u8(0x1000, 1),
            Err(MemError::Protection { .. })
        ));
        let mut buf = [0u8; 4];
        assert!(matches!(
            m.fetch(0x1000, &mut buf),
            Err(MemError::Protection { .. })
        ));
        m.protect_range(0x1000, 0x2000, Perm::RX);
        assert!(m.fetch(0x1000, &mut buf).is_ok());
    }

    #[test]
    fn cross_page_read_write() {
        let mut m = Memory::new();
        m.map_range(0x1000, 0x3000, Perm::RW).unwrap();
        let data: Vec<u8> = (0..=255u8).collect();
        m.write_bytes(0x1f80, &data).unwrap();
        let mut back = vec![0u8; 256];
        m.read_bytes(0x1f80, &mut back).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn cross_page_write_fails_at_boundary() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RW);
        // Second page unmapped: the write must fail.
        assert!(m.write_bytes(0x1ffc, &[1, 2, 3, 4, 5, 6, 7, 8]).is_err());
    }

    #[test]
    fn fetch_truncates_at_mapping_end() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RX);
        let mut buf = [0u8; 16];
        let n = m.fetch(0x1ff8, &mut buf).unwrap();
        assert_eq!(n, 8);
    }

    #[test]
    fn unmap_returns_contents() {
        let mut m = Memory::new();
        m.map_page(0x4000, Perm::RW);
        m.write_u64(0x4010, 99).unwrap();
        let page = m.unmap_page(0x4000).expect("was mapped");
        assert_eq!(u64::from_le_bytes(page[0x10..0x18].try_into().unwrap()), 99);
        assert!(!m.is_mapped(0x4000));
    }

    #[test]
    fn remap_preserves_contents() {
        let mut m = Memory::new();
        m.map_page(0x1000, Perm::RW);
        m.write_u64(0x1000, 7).unwrap();
        m.map_page(0x1000, Perm::R);
        assert_eq!(m.read_u64(0x1000).unwrap(), 7);
        assert_eq!(m.perm_at(0x1000), Some(Perm::R));
    }

    #[test]
    fn find_gap_skips_mappings() {
        let mut m = Memory::new();
        m.map_range(0x10000, 0x12000, Perm::RW).unwrap();
        let g = m.find_gap(0x10000, 0x1000);
        assert_eq!(g, 0x12000);
        let g2 = m.find_gap(0x20000, 0x4000);
        assert_eq!(g2, 0x20000);
    }

    #[test]
    fn read_cstr_stops_at_nul() {
        let mut m = Memory::new();
        m.map_page(0, Perm::RW);
        m.write_bytes(0x10, b"hello\0world").unwrap();
        assert_eq!(m.read_cstr(0x10, 64).unwrap(), "hello");
    }

    proptest! {
        #[test]
        fn rw_roundtrip(addr in 0u64..0x8000, data in proptest::collection::vec(any::<u8>(), 1..512)) {
            let mut m = Memory::new();
            m.map_range(0, 0x10000, Perm::RW).unwrap();
            m.write_bytes(addr, &data).unwrap();
            let mut back = vec![0u8; data.len()];
            m.read_bytes(addr, &mut back).unwrap();
            prop_assert_eq!(back, data);
        }

        #[test]
        fn u64_roundtrip(addr in 0u64..0xff8, v in any::<u64>()) {
            let mut m = Memory::new();
            m.map_page(0, Perm::RW);
            m.write_u64(addr, v).unwrap();
            prop_assert_eq!(m.read_u64(addr).unwrap(), v);
        }
    }
}
