//! Execution observers: the instrumentation hook-points that PinPlay-style
//! tools (logger, BBV profiler, simulators) attach to.
//!
//! The observer is a generic parameter of the machine, so un-instrumented
//! ("native") execution pays no dynamic-dispatch cost — mirroring how
//! native hardware runs uninstrumented while Pin-based tools interpose.

use elfie_isa::{Insn, MarkerKind};

/// Callbacks invoked by the interpreter and the machine.
///
/// All methods have empty default bodies; implement only what the tool
/// needs. Methods are called in a fixed order per instruction:
/// `on_insn` → (`on_mem_read` | `on_mem_write`)* → retirement.
pub trait Observer {
    /// An instruction at `rip` (encoded length `len`) is about to execute
    /// on thread `tid`.
    fn on_insn(&mut self, tid: u32, rip: u64, insn: &Insn, len: usize) {
        let _ = (tid, rip, insn, len);
    }

    /// A data read of `size` bytes at `addr`.
    fn on_mem_read(&mut self, tid: u32, addr: u64, size: u64) {
        let _ = (tid, addr, size);
    }

    /// A data write of `size` bytes at `addr`.
    fn on_mem_write(&mut self, tid: u32, addr: u64, size: u64) {
        let _ = (tid, addr, size);
    }

    /// Thread `tid` is about to issue syscall `nr` with `args`.
    fn on_syscall(&mut self, tid: u32, nr: u64, args: &[u64; 6]) {
        let _ = (tid, nr, args);
    }

    /// Syscall `nr` on `tid` returned `ret` after writing the given memory
    /// side effects.
    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: u64, writes: &[(u64, Vec<u8>)]) {
        let _ = (tid, nr, ret, writes);
    }

    /// A marker instruction executed.
    fn on_marker(&mut self, tid: u32, kind: MarkerKind, tag: u32) {
        let _ = (tid, kind, tag);
    }

    /// A new thread was created (`clone`): `child` spawned by `parent`.
    fn on_thread_start(&mut self, parent: u32, child: u32) {
        let _ = (parent, child);
    }

    /// Thread `tid` exited with `code`.
    fn on_thread_exit(&mut self, tid: u32, code: i32) {
        let _ = (tid, code);
    }

    /// Polled by the machine after every retirement; returning true stops
    /// the run with [`crate::machine::ExitReason::ObserverStop`]. Tools use
    /// this to end execution at region boundaries they detect themselves.
    fn wants_stop(&self) -> bool {
        false
    }
}

/// The no-op observer used for native runs.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {}

impl<T: Observer + ?Sized> Observer for &mut T {
    fn on_insn(&mut self, tid: u32, rip: u64, insn: &Insn, len: usize) {
        (**self).on_insn(tid, rip, insn, len);
    }
    fn on_mem_read(&mut self, tid: u32, addr: u64, size: u64) {
        (**self).on_mem_read(tid, addr, size);
    }
    fn on_mem_write(&mut self, tid: u32, addr: u64, size: u64) {
        (**self).on_mem_write(tid, addr, size);
    }
    fn on_syscall(&mut self, tid: u32, nr: u64, args: &[u64; 6]) {
        (**self).on_syscall(tid, nr, args);
    }
    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: u64, writes: &[(u64, Vec<u8>)]) {
        (**self).on_syscall_ret(tid, nr, ret, writes);
    }
    fn on_marker(&mut self, tid: u32, kind: MarkerKind, tag: u32) {
        (**self).on_marker(tid, kind, tag);
    }
    fn on_thread_start(&mut self, parent: u32, child: u32) {
        (**self).on_thread_start(parent, child);
    }
    fn on_thread_exit(&mut self, tid: u32, code: i32) {
        (**self).on_thread_exit(tid, code);
    }
    fn wants_stop(&self) -> bool {
        (**self).wants_stop()
    }
}
