//! Guest threads: architectural state plus scheduling and accounting
//! metadata.

use elfie_isa::RegFile;

/// Scheduling state of a guest thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Eligible to run.
    Runnable,
    /// Blocked on a futex word at the given address.
    FutexWait(u64),
    /// Exited with the given code.
    Exited(i32),
}

/// Per-thread programmable "hardware" performance counter used for the
/// graceful-exit mechanism: the counter counts retired instructions and
/// fires once when it reaches its target.
///
/// This models the paper's use of a retired-instruction counter with an
/// overflow callback that exits the thread once the region's recorded
/// instruction count is reached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RetireCounter {
    /// Instructions counted since arming.
    pub count: u64,
    /// Fire threshold; `None` means not armed.
    pub target: Option<u64>,
    /// True once the counter has fired.
    pub fired: bool,
}

impl RetireCounter {
    /// Arms the counter to fire after `target` further retirements.
    pub fn arm(&mut self, target: u64) {
        self.count = 0;
        self.target = Some(target);
        self.fired = false;
    }

    /// Counts one retirement; returns true exactly once, when the target
    /// is reached.
    pub fn retire(&mut self) -> bool {
        self.count += 1;
        match self.target {
            Some(t) if !self.fired && self.count >= t => {
                self.fired = true;
                true
            }
            _ => false,
        }
    }
}

/// A guest thread.
#[derive(Debug, Clone)]
pub struct Thread {
    /// Thread id (unique within the machine; the initial thread is 0).
    pub tid: u32,
    /// Architectural registers (GPRs, RIP, flags, segment bases, XSAVE).
    pub regs: RegFile,
    /// Scheduling state.
    pub state: ThreadState,
    /// Retired instruction count (the "instructions retired" hw counter).
    pub icount: u64,
    /// Accumulated cycles under the machine's hardware timing model.
    pub cycles: u64,
    /// Graceful-exit counter.
    pub exit_counter: RetireCounter,
}

impl Thread {
    /// Creates a runnable thread with the given id and registers.
    pub fn new(tid: u32, regs: RegFile) -> Thread {
        Thread {
            tid,
            regs,
            state: ThreadState::Runnable,
            icount: 0,
            cycles: 0,
            exit_counter: RetireCounter::default(),
        }
    }

    /// True if the thread can be scheduled.
    pub fn is_runnable(&self) -> bool {
        self.state == ThreadState::Runnable
    }

    /// True if the thread has exited.
    pub fn is_exited(&self) -> bool {
        matches!(self.state, ThreadState::Exited(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retire_counter_fires_once() {
        let mut c = RetireCounter::default();
        c.arm(3);
        assert!(!c.retire());
        assert!(!c.retire());
        assert!(c.retire());
        assert!(!c.retire(), "fires exactly once");
        assert_eq!(c.count, 4);
    }

    #[test]
    fn unarmed_counter_never_fires() {
        let mut c = RetireCounter::default();
        for _ in 0..100 {
            assert!(!c.retire());
        }
    }

    #[test]
    fn thread_state_transitions() {
        let mut t = Thread::new(0, RegFile::new());
        assert!(t.is_runnable());
        t.state = ThreadState::FutexWait(0x1000);
        assert!(!t.is_runnable());
        assert!(!t.is_exited());
        t.state = ThreadState::Exited(0);
        assert!(t.is_exited());
    }
}
