//! The guest machine: memory + threads + kernel + scheduler + hardware
//! timing. Stands in for "native hardware running Linux" in the paper's
//! terminology.
//!
//! Three properties matter for reproducing the paper's behaviours:
//!
//! 1. **Unconstrained, non-deterministic multi-threading** — the scheduler
//!    interleaves runnable threads with a seeded, jittered quantum, so two
//!    runs with different seeds take different interleavings (the reason a
//!    region of interest found in one run "may not always be reachable in a
//!    subsequent execution").
//! 2. **Hardware performance counters** — retired instructions and cycles
//!    per thread, plus the programmable graceful-exit counter.
//! 3. **Pluggable instrumentation** — an [`Observer`] (the Pin analogy)
//!    and a [`SyscallInterposer`] (the replay-injection hook used by the
//!    PinPlay replayer).

use crate::bbcache::BlockCache;
use crate::cpu::{self, Effect, Fault, StepEnv};
use crate::hwmodel::HwModel;
use crate::kernel::{Control, Kernel, KernelConfig};
use crate::mem::{MaterializeStats, Memory, Perm};
use crate::obs::{NullObserver, Observer};
use crate::thread::{Thread, ThreadState};
use elfie_isa::{Insn, MarkerKind, Program, RegFile};

/// What an interposed syscall should do.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SyscallAction {
    /// Let the kernel execute the call normally.
    PassThrough,
    /// Skip kernel execution; write `writes` into guest memory and return
    /// `ret`. This is PinPlay replay injection: results of non-repeatable
    /// calls (e.g. `gettimeofday`) are reproduced from the log.
    Skip {
        ret: u64,
        writes: Vec<(u64, Vec<u8>)>,
    },
}

/// Hook consulted before every syscall reaches the kernel.
pub trait SyscallInterposer {
    /// Decides how to service syscall `nr` issued by `tid`.
    fn on_syscall(&mut self, tid: u32, nr: u64, args: [u64; 6], mem: &mut Memory) -> SyscallAction;
}

/// Declarative stop conditions checked after each retirement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopWhen {
    /// Stop once the machine-lifetime global instruction count reaches `n`.
    GlobalInsns(u64),
    /// Stop once thread `tid` has retired `n` instructions.
    ThreadInsns(u32, u64),
    /// Stop after the instruction at `pc` has retired `count` times
    /// (globally, across threads) — the Sniper end-of-simulation convention
    /// from the multi-threaded case study.
    PcCount { pc: u64, count: u64 },
    /// Stop when a marker of this kind retires.
    Marker(MarkerKind),
}

/// Why [`Machine::run`] returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExitReason {
    /// Every thread exited; carries the process exit code.
    AllExited(i32),
    /// A thread faulted (the "ungraceful exit").
    Fault { tid: u32, fault: Fault },
    /// The per-call fuel budget was exhausted.
    FuelExhausted,
    /// The observer requested a stop.
    ObserverStop,
    /// Stop condition at the given index in [`Machine::stop_conditions`].
    StopCondition(usize),
    /// All live threads are blocked on futexes.
    Deadlock,
}

/// Summary of one [`Machine::run`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSummary {
    /// Why the run ended.
    pub reason: ExitReason,
    /// Instructions retired during this call.
    pub insns: u64,
    /// Cycles elapsed during this call.
    pub cycles: u64,
}

/// Machine configuration.
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// Scheduler quantum in instructions (jittered per slice).
    pub quantum: u64,
    /// Seed for scheduling jitter and stack randomisation.
    pub seed: u64,
    /// Top of the initial thread's stack.
    pub stack_top: u64,
    /// Stack size in bytes.
    pub stack_size: u64,
    /// Enable Linux-style stack randomisation (slide below `stack_top`).
    pub stack_randomize: bool,
    /// Execute through the decoded basic-block cache ([`crate::bbcache`]).
    /// Cached execution is bit-identical to the per-step interpreter, so
    /// this knob only trades speed for memory and is deliberately left out
    /// of [`MachineConfig::fingerprint`].
    pub block_cache: bool,
    /// Kernel configuration.
    pub kernel: KernelConfig,
}

impl Default for MachineConfig {
    fn default() -> Self {
        MachineConfig {
            quantum: 64,
            seed: 1,
            stack_top: 0x7ffd_8000_0000,
            stack_size: 1 << 20,
            stack_randomize: true,
            block_cache: true,
            kernel: KernelConfig::default(),
        }
    }
}

impl MachineConfig {
    /// Stable hash over every field that influences execution. Two
    /// machines with equal fingerprints run a given program identically,
    /// so the pipeline cache can reuse results keyed on this value.
    pub fn fingerprint(&self) -> u64 {
        elfie_isa::Fnv64::new()
            .u64(self.quantum)
            .u64(self.seed)
            .u64(self.stack_top)
            .u64(self.stack_size)
            .u64(u64::from(self.stack_randomize))
            .u64(self.kernel.brk_base)
            .u64(self.kernel.mmap_base)
            .u64(self.kernel.epoch_ns)
            .u64(self.kernel.pid)
            .finish()
    }
}

/// Counters from the interpreter fast path: the decoded basic-block
/// cache and the software TLB. Harvest with
/// [`Machine::fastpath_stats`]; purely observational — the fast path is
/// bit-identical to per-step interpretation.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct FastPathStats {
    /// Instructions served from cached blocks without decoding.
    pub block_hits: u64,
    /// Basic-block builds (one decode pass each).
    pub block_misses: u64,
    /// Blocks evicted by self-modifying-code writes.
    pub block_evictions: u64,
    /// Whole-cache generation flushes (memory layout changes).
    pub block_flushes: u64,
    /// Software-TLB hits across read/write/fetch entries.
    pub tlb_hits: u64,
    /// Software-TLB misses (slow `BTreeMap` walks).
    pub tlb_misses: u64,
    /// Guest instructions retired over the machine's lifetime.
    pub insns: u64,
    /// Page-materialization counters (shared frames, CoW breaks, lazy
    /// faults, resident bytes) from this machine's [`Memory`].
    pub mat: MaterializeStats,
}

impl FastPathStats {
    /// Fraction of instructions served without decoding, in `[0, 1]`.
    /// Zero-guarded: an idle machine reports 0, not NaN.
    pub fn block_hit_rate(&self) -> f64 {
        hit_rate(self.block_hits, self.block_misses)
    }

    /// Fraction of page translations served by the TLB, in `[0, 1]`.
    /// Zero-guarded: an idle machine reports 0, not NaN.
    pub fn tlb_hit_rate(&self) -> f64 {
        hit_rate(self.tlb_hits, self.tlb_misses)
    }

    /// Adds `other`'s counters into `self` (for aggregating across runs).
    /// Saturating and order-independent: merging per-worker stats in any
    /// order equals the serial totals (see the `stats_merge` proptest).
    pub fn accumulate(&mut self, other: FastPathStats) {
        self.block_hits = self.block_hits.saturating_add(other.block_hits);
        self.block_misses = self.block_misses.saturating_add(other.block_misses);
        self.block_evictions = self.block_evictions.saturating_add(other.block_evictions);
        self.block_flushes = self.block_flushes.saturating_add(other.block_flushes);
        self.tlb_hits = self.tlb_hits.saturating_add(other.tlb_hits);
        self.tlb_misses = self.tlb_misses.saturating_add(other.tlb_misses);
        self.insns = self.insns.saturating_add(other.insns);
        self.mat.accumulate(&other.mat);
    }
}

/// `hits / (hits + misses)` in `[0, 1]`, 0 when there were no lookups.
/// The single definition every hit-rate in the workspace derives from
/// (re-exported; `elfie::stats` and the CLI both call it).
pub fn hit_rate(hits: u64, misses: u64) -> f64 {
    let total = hits.saturating_add(misses);
    if total == 0 {
        0.0
    } else {
        hits as f64 / total as f64
    }
}

/// Per-thread position inside a cached block: the next instruction to
/// execute, valid only while the thread's `rip` matches `expected_rip`
/// and the block is still live.
#[derive(Debug, Clone, Copy, Default)]
struct BlockCursor {
    valid: bool,
    slot: usize,
    block_start: u64,
    pos: usize,
    expected_rip: u64,
}

/// `(retired, step result, base cycle cost)` of one executed effect.
#[inline]
fn classify(effect: Effect) -> (bool, ThreadStep, u64) {
    match effect {
        Effect::Normal => (true, ThreadStep::Retired, 1),
        Effect::Syscall => (
            true,
            ThreadStep::SyscallRetired,
            HwModel::insn_cost(&Insn::Syscall),
        ),
        Effect::Marker(k, tag) => (true, ThreadStep::Marker(k, tag), 1),
        Effect::Fault(f) => (false, ThreadStep::Fault(f), 0),
    }
}

/// Result of stepping one thread by one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadStep {
    /// The instruction retired.
    Retired,
    /// A syscall retired (kernel serviced or injected).
    SyscallRetired,
    /// A marker instruction retired.
    Marker(MarkerKind, u32),
    /// The thread is not runnable.
    NotRunnable,
    /// The thread faulted.
    Fault(Fault),
}

#[inline]
fn elfie_isa_live_threads() -> u64 {
    crate::kernel::nr::LIVE_THREADS
}

fn xorshift(state: &mut u64) -> u64 {
    let mut x = *state;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x.max(1);
    x
}

/// Observer wrapper that feeds data accesses to the hardware model while
/// forwarding everything to the user observer.
struct HwObs<'a, O: Observer> {
    inner: &'a mut O,
    hw: &'a mut HwModel,
    extra_cycles: u64,
}

impl<O: Observer> Observer for HwObs<'_, O> {
    fn on_insn(&mut self, tid: u32, rip: u64, insn: &Insn, len: usize) {
        self.inner.on_insn(tid, rip, insn, len);
    }
    fn on_mem_read(&mut self, tid: u32, addr: u64, size: u64) {
        self.extra_cycles += self.hw.data_access(addr);
        self.inner.on_mem_read(tid, addr, size);
    }
    fn on_mem_write(&mut self, tid: u32, addr: u64, size: u64) {
        self.extra_cycles += self.hw.data_access(addr);
        self.inner.on_mem_write(tid, addr, size);
    }
    fn on_syscall(&mut self, tid: u32, nr: u64, args: &[u64; 6]) {
        self.inner.on_syscall(tid, nr, args);
    }
    fn on_syscall_ret(&mut self, tid: u32, nr: u64, ret: u64, writes: &[(u64, Vec<u8>)]) {
        self.inner.on_syscall_ret(tid, nr, ret, writes);
    }
    fn on_marker(&mut self, tid: u32, kind: MarkerKind, tag: u32) {
        self.inner.on_marker(tid, kind, tag);
    }
    fn on_thread_start(&mut self, parent: u32, child: u32) {
        self.inner.on_thread_start(parent, child);
    }
    fn on_thread_exit(&mut self, tid: u32, code: i32) {
        self.inner.on_thread_exit(tid, code);
    }
    fn wants_stop(&self) -> bool {
        self.inner.wants_stop()
    }
}

/// The guest machine.
pub struct Machine<O: Observer = NullObserver> {
    /// Guest physical/virtual memory (identity; no paging translation).
    pub mem: Memory,
    /// All threads ever created; index == tid.
    pub threads: Vec<Thread>,
    /// The emulated kernel.
    pub kernel: Kernel,
    /// Attached instrumentation.
    pub obs: O,
    /// Declarative stop conditions (checked in order).
    pub stop_conditions: Vec<StopWhen>,
    cfg: MachineConfig,
    hw: HwModel,
    global_icount: u64,
    cycle: u64,
    rng: u64,
    sched_next: usize,
    exit_code: i32,
    interposer: Option<Box<dyn SyscallInterposer>>,
    pc_counters: Vec<u64>,
    bbcache: BlockCache,
    cursors: Vec<BlockCursor>,
    seen_layout: u64,
}

impl Machine<NullObserver> {
    /// Creates an empty machine with no instrumentation.
    pub fn new(cfg: MachineConfig) -> Machine<NullObserver> {
        Machine::with_observer(cfg, NullObserver)
    }
}

impl<O: Observer> Machine<O> {
    /// Creates a machine with the given observer attached.
    pub fn with_observer(cfg: MachineConfig, obs: O) -> Machine<O> {
        Machine {
            mem: Memory::new(),
            threads: Vec::new(),
            kernel: Kernel::new(cfg.kernel.clone()),
            obs,
            stop_conditions: Vec::new(),
            rng: cfg.seed.max(1),
            hw: HwModel::default(),
            global_icount: 0,
            cycle: 0,
            sched_next: 0,
            exit_code: 0,
            interposer: None,
            pc_counters: Vec::new(),
            bbcache: BlockCache::new(),
            cursors: Vec::new(),
            seen_layout: 0,
            cfg,
        }
    }

    /// Installs a syscall interposer (replay injection hook).
    pub fn set_interposer(&mut self, ip: Box<dyn SyscallInterposer>) {
        self.interposer = Some(ip);
    }

    /// Removes the interposer.
    pub fn clear_interposer(&mut self) {
        self.interposer = None;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Machine-lifetime retired instruction count across all threads.
    pub fn global_icount(&self) -> u64 {
        self.global_icount
    }

    /// Machine-lifetime cycle count.
    pub fn cycles(&self) -> u64 {
        self.cycle
    }

    /// Current wall-clock offset in nanoseconds (cycles at nominal clock).
    pub fn now_ns(&self) -> u64 {
        self.hw.cycles_to_ns(self.cycle)
    }

    /// The hardware timing model (for cache statistics).
    pub fn hw(&self) -> &HwModel {
        &self.hw
    }

    /// Mutable access to the hardware timing model, so a snapshot restore
    /// can re-install captured cache state before resuming.
    pub fn hw_mut(&mut self) -> &mut HwModel {
        &mut self.hw
    }

    /// Overwrites the machine-lifetime instruction and cycle counters.
    /// Used when resuming from a mid-run snapshot: the counters continue
    /// from the captured values so every downstream figure (cycles,
    /// wall-clock, per-thread accounting) is bit-identical to the
    /// uninterrupted run.
    pub fn restore_counters(&mut self, global_icount: u64, cycles: u64) {
        self.global_icount = global_icount;
        self.cycle = cycles;
    }

    /// The process exit code recorded so far.
    pub fn exit_code(&self) -> i32 {
        self.exit_code
    }

    /// Loads an assembled program: maps all chunks RWX, sets up the main
    /// thread with a (optionally randomised) stack.
    ///
    /// # Panics
    /// Panics if called twice (the machine already has threads).
    pub fn load_program(&mut self, prog: &Program) {
        assert!(self.threads.is_empty(), "program already loaded");
        for c in &prog.chunks {
            if !c.bytes.is_empty() {
                self.mem
                    .map_range(c.addr, c.end(), Perm::RWX)
                    .expect("valid chunk range");
                self.mem
                    .write_bytes_unchecked(c.addr, &c.bytes)
                    .expect("mapped");
            }
        }
        let mut regs = RegFile::new();
        regs.rip = prog.entry;
        regs.set_rsp(self.setup_stack());
        self.threads.push(Thread::new(0, regs));
    }

    /// Maps the main stack and returns the initial stack pointer,
    /// applying Linux-style randomisation when configured.
    pub fn setup_stack(&mut self) -> u64 {
        let slide = if self.cfg.stack_randomize {
            (xorshift(&mut self.rng) % 256) * elfie_isa::PAGE_SIZE
        } else {
            0
        };
        let top = self.cfg.stack_top - slide;
        let base = top - self.cfg.stack_size;
        self.mem
            .map_range(base, top, Perm::RW)
            .expect("stack range");
        // Leave room for a fake argv/envp block, 16-byte aligned.
        (top - 256) & !15
    }

    /// Adds a thread with the given registers, returning its tid.
    pub fn add_thread(&mut self, regs: RegFile) -> u32 {
        let tid = self.threads.len() as u32;
        self.threads.push(Thread::new(tid, regs));
        tid
    }

    /// True when every thread has exited.
    pub fn all_exited(&self) -> bool {
        !self.threads.is_empty() && self.threads.iter().all(|t| t.is_exited())
    }

    /// Fetches and decodes (without executing) the next instruction of
    /// thread `idx`. Used by harnesses that must make scheduling decisions
    /// based on the upcoming instruction — e.g. the PinPlay replayer
    /// stalling a thread whose next atomic operation is out of recorded
    /// order.
    pub fn peek_insn(&self, idx: usize) -> Option<(Insn, usize)> {
        let t = self.threads.get(idx)?;
        cpu::fetch_decode(t, &self.mem).ok()
    }

    /// Counters from the interpreter fast path (block cache + TLB).
    pub fn fastpath_stats(&self) -> FastPathStats {
        let b = self.bbcache.stats();
        let (tlb_hits, tlb_misses) = self.mem.tlb_stats();
        FastPathStats {
            block_hits: b.hits,
            block_misses: b.misses,
            block_evictions: b.evictions,
            block_flushes: b.flushes,
            tlb_hits,
            tlb_misses,
            insns: self.global_icount,
            mat: self.mem.materialize_stats(),
        }
    }

    /// Evicts blocks overlapping pages dirtied by self-modifying code and
    /// drops every thread's block cursor. Called before serving each step
    /// from the cache, so writes from the previous instruction, from
    /// syscall side effects, or from the harness between `run` calls are
    /// all re-decoded before anything executes over them.
    fn drain_smc(&mut self) {
        if self.mem.has_dirty_code() {
            for base in self.mem.take_dirty_code() {
                self.bbcache.evict_page(base);
            }
            for c in &mut self.cursors {
                c.valid = false;
            }
        }
    }

    /// Executes one instruction on thread `idx`. Exposed so external
    /// harnesses (the PinPlay replayer, simulators) can impose their own
    /// schedule.
    pub fn step_thread(&mut self, idx: usize) -> ThreadStep {
        self.step_thread_batch(idx, 1).1
    }

    /// Executes up to `max` instructions on thread `idx`, serving the
    /// straight-line remainder of the current cached block in one call so
    /// the per-step dispatch overhead amortises over the block.
    ///
    /// Semantics are identical to calling [`Machine::step_thread`] in a
    /// loop: every instruction retires individually (observer callbacks,
    /// cycle accounting, graceful-exit counters, PcCount tracking), and
    /// the batch ends at block boundaries, taken branches, syscalls,
    /// faults, observer stop requests and writes to cached code pages.
    /// Returns how many instructions were attempted (a faulting attempt
    /// counts) and the last attempt's result.
    fn step_thread_batch(&mut self, idx: usize, max: u64) -> (u64, ThreadStep) {
        if idx >= self.threads.len() || !self.threads[idx].is_runnable() {
            return (0, ThreadStep::NotRunnable);
        }
        let use_cache = self.cfg.block_cache;
        self.drain_smc();
        if use_cache {
            if self.cursors.len() < self.threads.len() {
                self.cursors
                    .resize(self.threads.len(), BlockCursor::default());
            }
            // Any map/unmap/protect since the last step invalidates every
            // cached block (lazily, via the generation).
            let layout = self.mem.layout_epoch();
            if layout != self.seen_layout {
                self.seen_layout = layout;
                self.bbcache.flush();
                for c in &mut self.cursors {
                    c.valid = false;
                }
            }
        }
        let Machine {
            mem,
            threads,
            obs,
            hw,
            bbcache,
            cursors,
            stop_conditions,
            pc_counters,
            global_icount,
            cycle,
            ..
        } = self;
        let t = &mut threads[idx];
        let pre_rip = t.regs.rip;

        // Fast path: position a cursor on the next pre-decoded
        // instruction — the thread's own cursor if it is still walking a
        // block, else by block lookup (building on miss). Falls back to
        // the fetch+decode interpreter when the instruction can't be
        // decoded (so faults are reproduced exactly by the slow path).
        let mut cached: Option<(usize, u64, usize)> = None;
        if use_cache {
            let cur = &cursors[idx];
            if cur.valid
                && cur.expected_rip == pre_rip
                && bbcache
                    .insn_at(cur.slot, cur.block_start, cur.pos)
                    .is_some()
            {
                let (slot, start, pos) = (cur.slot, cur.block_start, cur.pos);
                bbcache.count_hit();
                cached = Some((slot, start, pos));
            } else if let Some(slot) = match bbcache.lookup(pre_rip) {
                Some((slot, _)) => Some(slot),
                None => bbcache.build(mem, pre_rip),
            } {
                cached = Some((slot, pre_rip, 0));
            }
        }

        let mut attempts = 0u64;
        let mut exit_fired = false;
        let result = if let Some((slot, block_start, start_pos)) = cached {
            // Hold the block for the whole batch: nothing below can
            // invalidate it — evictions and flushes only happen in the
            // prologue above, and a write to cached code ends the batch.
            let block = bbcache.block_at(slot).expect("cursor validated the block");
            let mut pos = start_pos;
            // Hits beyond the first instruction (already counted above).
            let mut extra_hits = 0u64;
            let step = loop {
                let (insn, len) = block.insns[pos];
                let len = len as usize;
                let rip = t.regs.rip;
                let env = StepEnv { tsc: *cycle };
                let mut hobs = HwObs {
                    inner: &mut *obs,
                    hw,
                    extra_cycles: 0,
                };
                let effect = cpu::exec(t, mem, insn, len, env, &mut hobs);
                let extra = hobs.extra_cycles;
                attempts += 1;

                let (retired, step, insn_cost) = classify(effect);
                if retired {
                    let cost = insn_cost + extra;
                    t.icount += 1;
                    t.cycles += cost;
                    *global_icount += 1;
                    *cycle += cost;
                    // Graceful-exit counter: fires once the armed target
                    // is hit.
                    if t.exit_counter.retire() {
                        t.state = ThreadState::Exited(0);
                        obs.on_thread_exit(t.tid, 0);
                        exit_fired = true;
                        cursors[idx].valid = false;
                        break step;
                    }
                    // Track PcCount stop-condition counters.
                    for (i, c) in stop_conditions.iter().enumerate() {
                        if let StopWhen::PcCount { pc, .. } = c {
                            if *pc == rip {
                                pc_counters[i] += 1;
                            }
                        }
                    }
                }
                // Advance along the straight line; any deviation (taken
                // branch, syscall, fault rewind) drops the cursor and
                // ends the batch.
                if !(matches!(effect, Effect::Normal | Effect::Marker(..))
                    && t.regs.rip == rip.wrapping_add(len as u64))
                {
                    cursors[idx].valid = false;
                    break step;
                }
                pos += 1;
                if attempts >= max
                    || pos >= block.insns.len()
                    || mem.has_dirty_code()
                    || obs.wants_stop()
                {
                    cursors[idx] = BlockCursor {
                        valid: true,
                        slot,
                        block_start,
                        pos,
                        expected_rip: t.regs.rip,
                    };
                    break step;
                }
                extra_hits += 1;
            };
            bbcache.add_hits(extra_hits);
            step
        } else {
            // Slow path: fetch + decode + execute one instruction.
            let env = StepEnv { tsc: *cycle };
            let mut hobs = HwObs {
                inner: &mut *obs,
                hw,
                extra_cycles: 0,
            };
            let effect = cpu::step(t, mem, env, &mut hobs);
            let extra = hobs.extra_cycles;
            attempts = 1;
            if use_cache {
                cursors[idx].valid = false;
            }
            let (retired, step, insn_cost) = classify(effect);
            if retired {
                let cost = insn_cost + extra;
                t.icount += 1;
                t.cycles += cost;
                *global_icount += 1;
                *cycle += cost;
                if t.exit_counter.retire() {
                    t.state = ThreadState::Exited(0);
                    obs.on_thread_exit(t.tid, 0);
                    exit_fired = true;
                } else {
                    for (i, c) in stop_conditions.iter().enumerate() {
                        if let StopWhen::PcCount { pc, .. } = c {
                            if *pc == pre_rip {
                                pc_counters[i] += 1;
                            }
                        }
                    }
                }
            }
            step
        };
        if !exit_fired && matches!(result, ThreadStep::SyscallRetired) {
            self.service_syscall(idx);
        }
        (attempts, result)
    }

    fn service_syscall(&mut self, idx: usize) {
        let tid = self.threads[idx].tid;
        let nr = self.threads[idx].regs.read(elfie_isa::Reg::Rax);
        let args = [
            self.threads[idx].regs.read(elfie_isa::Reg::Rdi),
            self.threads[idx].regs.read(elfie_isa::Reg::Rsi),
            self.threads[idx].regs.read(elfie_isa::Reg::Rdx),
            self.threads[idx].regs.read(elfie_isa::Reg::R10),
            self.threads[idx].regs.read(elfie_isa::Reg::R8),
            self.threads[idx].regs.read(elfie_isa::Reg::R9),
        ];
        self.obs.on_syscall(tid, nr, &args);

        // LIVE_THREADS is machine-level state the kernel cannot see; it is
        // never logged/injected, so service it before any interposer.
        if nr == elfie_isa_live_threads() {
            let live = self.threads.iter().filter(|t| !t.is_exited()).count() as u64;
            self.threads[idx].regs.write(elfie_isa::Reg::Rax, live);
            self.obs.on_syscall_ret(tid, nr, live, &[]);
            return;
        }

        if let Some(ip) = self.interposer.as_mut() {
            match ip.on_syscall(tid, nr, args, &mut self.mem) {
                SyscallAction::Skip { ret, writes } => {
                    for (addr, bytes) in &writes {
                        // Injection ignores page protections, as PinPlay
                        // does when reproducing side effects.
                        let _ = self.mem.write_bytes_unchecked(*addr, bytes);
                    }
                    self.threads[idx].regs.write(elfie_isa::Reg::Rax, ret);
                    self.obs.on_syscall_ret(tid, nr, ret, &writes);
                    return;
                }
                SyscallAction::PassThrough => {}
            }
        }

        let now_ns = self.now_ns();
        let Machine {
            mem,
            threads,
            kernel,
            ..
        } = self;
        let outcome = kernel.handle(&mut threads[idx], mem, now_ns);
        let mut ret = outcome.ret;
        match outcome.control {
            Control::Normal => {}
            Control::ThreadExit(code) => {
                self.threads[idx].state = ThreadState::Exited(code);
                self.obs.on_thread_exit(tid, code);
            }
            Control::ProcessExit(code) => {
                self.exit_code = code;
                for t in &mut self.threads {
                    if !t.is_exited() {
                        let id = t.tid;
                        t.state = ThreadState::Exited(code);
                        self.obs.on_thread_exit(id, code);
                    }
                }
            }
            Control::Spawn(regs) => {
                let child = self.threads.len() as u32;
                self.threads.push(Thread::new(child, *regs));
                ret = child as u64;
                self.obs.on_thread_start(tid, child);
            }
            Control::Yield => {
                self.sched_next = self.sched_next.wrapping_add(1);
            }
            Control::FutexWait(addr) => {
                self.threads[idx].state = ThreadState::FutexWait(addr);
            }
            Control::FutexWake { addr, count } => {
                let mut woken = 0u64;
                for t in &mut self.threads {
                    if woken >= count {
                        break;
                    }
                    if t.state == ThreadState::FutexWait(addr) {
                        t.state = ThreadState::Runnable;
                        woken += 1;
                    }
                }
                ret = woken;
            }
            Control::ArmExitCounter(target) => {
                self.threads[idx].exit_counter.arm(target);
            }
        }
        self.threads[idx].regs.write(elfie_isa::Reg::Rax, ret);
        self.obs.on_syscall_ret(tid, nr, ret, &outcome.writes);
    }

    fn check_stop(&self, idx_tid: u32, last: ThreadStep) -> Option<usize> {
        for (i, c) in self.stop_conditions.iter().enumerate() {
            let hit = match *c {
                StopWhen::GlobalInsns(n) => self.global_icount >= n,
                StopWhen::ThreadInsns(tid, n) => self
                    .threads
                    .get(tid as usize)
                    .map(|t| t.icount >= n)
                    .unwrap_or(false),
                StopWhen::PcCount { count, .. } => self.pc_counters[i] >= count,
                StopWhen::Marker(kind) => {
                    matches!(last, ThreadStep::Marker(k, _) if k == kind)
                }
            };
            let _ = idx_tid;
            if hit {
                return Some(i);
            }
        }
        None
    }

    /// Runs the machine until every thread exits, a fault occurs, a stop
    /// condition or observer stop triggers, or `fuel` instructions retire.
    pub fn run(&mut self, fuel: u64) -> RunSummary {
        self.pc_counters.resize(self.stop_conditions.len(), 0);
        let start_insns = self.global_icount;
        let start_cycles = self.cycle;
        let mut budget = fuel;
        let finish = |m: &Machine<O>, reason: ExitReason| RunSummary {
            reason,
            insns: m.global_icount - start_insns,
            cycles: m.cycle - start_cycles,
        };

        loop {
            if self.all_exited() {
                return finish(self, ExitReason::AllExited(self.exit_code));
            }
            // Pick the next runnable thread round-robin.
            let n = self.threads.len();
            let mut chosen = None;
            for off in 0..n {
                let idx = (self.sched_next + off) % n;
                if self.threads[idx].is_runnable() {
                    chosen = Some(idx);
                    break;
                }
            }
            let idx = match chosen {
                Some(i) => i,
                None => return finish(self, ExitReason::Deadlock),
            };
            // Jittered quantum: [quantum/2, 3*quantum/2).
            let q = self.cfg.quantum;
            let mut slice_left = (q / 2 + xorshift(&mut self.rng) % q.max(1)).max(1);
            while slice_left > 0 {
                if budget == 0 {
                    return finish(self, ExitReason::FuelExhausted);
                }
                let tid = self.threads[idx].tid;
                // With no stop conditions armed the rest of the slice can
                // be served as one cached-block batch; otherwise the
                // conditions must be re-evaluated after every instruction.
                let max = if self.stop_conditions.is_empty() {
                    slice_left.min(budget)
                } else {
                    1
                };
                let (ran, step) = self.step_thread_batch(idx, max);
                budget -= ran;
                slice_left -= ran;
                match step {
                    ThreadStep::Fault(fault) => {
                        return finish(self, ExitReason::Fault { tid, fault });
                    }
                    ThreadStep::NotRunnable => break,
                    _ => {}
                }
                if let Some(i) = self.check_stop(tid, step) {
                    return finish(self, ExitReason::StopCondition(i));
                }
                if self.obs.wants_stop() {
                    return finish(self, ExitReason::ObserverStop);
                }
                if !self.threads[idx].is_runnable() {
                    break;
                }
            }
            self.sched_next = (idx + 1) % self.threads.len().max(1);
        }
    }
}

impl<O: Observer> std::fmt::Debug for Machine<O> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Machine")
            .field("threads", &self.threads.len())
            .field("global_icount", &self.global_icount)
            .field("cycle", &self.cycle)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use elfie_isa::assemble;

    fn machine(src: &str) -> Machine {
        let prog = assemble(src).expect("assembles");
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(&prog);
        m
    }

    const EXIT0: &str = "\n mov rax, 60\n mov rdi, 0\n syscall\n";

    #[test]
    fn simple_program_exits() {
        let mut m = machine(&format!(".org 0x400000\nstart:\n mov rbx, 5{EXIT0}"));
        let s = m.run(1_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
        assert!(s.insns >= 4);
        assert!(s.cycles >= s.insns);
    }

    #[test]
    fn exit_code_propagates() {
        let mut m = machine(".org 0x400000\nstart:\n mov rax, 231\n mov rdi, 7\n syscall\n");
        let s = m.run(1_000);
        assert_eq!(s.reason, ExitReason::AllExited(7));
    }

    #[test]
    fn hello_world_stdout() {
        let mut m = machine(
            r#"
            .org 0x400000
            start:
                mov rax, 1          ; write
                mov rdi, 1          ; stdout
                mov rsi, msg
                mov rdx, 6
                syscall
                mov rax, 231
                mov rdi, 0
                syscall
            msg: .asciz "hello\n"
            "#,
        );
        let s = m.run(1_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
        assert_eq!(m.kernel.stdout, b"hello\n");
    }

    #[test]
    fn fuel_exhaustion() {
        let mut m = machine(".org 0x400000\nstart: jmp start\n");
        let s = m.run(100);
        assert_eq!(s.reason, ExitReason::FuelExhausted);
        assert_eq!(s.insns, 100);
    }

    #[test]
    fn fault_reported_with_thread() {
        let mut m = machine(".org 0x400000\nstart:\n mov rax, 0\n mov rbx, [rax]\n");
        let s = m.run(100);
        match s.reason {
            ExitReason::Fault {
                tid: 0,
                fault: Fault::Mem(_),
            } => {}
            other => panic!("expected fault, got {other:?}"),
        }
    }

    #[test]
    fn clone_creates_running_thread() {
        // Parent spawns a child that increments a counter and exits;
        // parent spins until the counter changes, then exits.
        let mut m = machine(
            r#"
            .org 0x400000
            start:
                mov rax, 56             ; clone
                mov rdi, 0
                mov rsi, 0x7f00100000   ; child stack (mapped below)
                syscall
                cmp rax, 0
                je child
            wait:
                mov rcx, [flag]
                cmp rcx, 1
                jne wait
                mov rax, 231
                mov rdi, 0
                syscall
            child:
                mov rdx, 1
                mov rbx, flag
                mov [rbx], rdx
                mov rax, 60
                mov rdi, 0
                syscall
            .align 8
            flag: .quad 0
            "#,
        );
        m.mem
            .map_range(0x7f000f0000, 0x7f00100000, Perm::RW)
            .unwrap();
        let s = m.run(1_000_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
        assert_eq!(m.threads.len(), 2);
        assert!(m.threads[1].icount > 0, "child ran");
    }

    #[test]
    fn scheduling_varies_with_seed() {
        let src = r#"
            .org 0x400000
            start:
                mov rax, 56
                mov rdi, 0
                mov rsi, 0x7f00100000
                syscall
                cmp rax, 0
                je child
                mov rcx, 2000
            ploop:
                sub rcx, 1
                cmp rcx, 0
                jne ploop
                mov rax, 60
                mov rdi, 0
                syscall
            child:
                mov rcx, 2000
            cloop:
                sub rcx, 1
                cmp rcx, 0
                jne cloop
                mov rax, 60
                mov rdi, 0
                syscall
        "#;
        let trace = |seed: u64| {
            let prog = assemble(src).unwrap();
            let mut cfg = MachineConfig {
                seed,
                ..MachineConfig::default()
            };
            cfg.stack_randomize = false;
            let mut m = Machine::new(cfg);
            m.load_program(&prog);
            m.mem
                .map_range(0x7f000f0000, 0x7f00100000, Perm::RW)
                .unwrap();
            // Record (tid at each scheduling decision) indirectly via final
            // per-thread cycle counts.
            m.run(1_000_000);
            (m.threads[0].cycles, m.threads[1].cycles)
        };
        // Different seeds must give different interleavings somewhere;
        // cycle totals are deterministic per seed.
        assert_eq!(trace(3), trace(3), "same seed reproduces");
    }

    #[test]
    fn stop_condition_global_insns() {
        let mut m = machine(".org 0x400000\nstart: jmp start\n");
        m.stop_conditions.push(StopWhen::GlobalInsns(50));
        let s = m.run(10_000);
        assert_eq!(s.reason, ExitReason::StopCondition(0));
        assert_eq!(m.global_icount(), 50);
    }

    #[test]
    fn stop_condition_marker() {
        let mut m = machine(".org 0x400000\nstart:\n nop\n marker sniper, 1\n jmp start\n");
        m.stop_conditions.push(StopWhen::Marker(MarkerKind::Sniper));
        let s = m.run(10_000);
        assert_eq!(s.reason, ExitReason::StopCondition(0));
        assert_eq!(m.global_icount(), 2);
    }

    #[test]
    fn stop_condition_pc_count() {
        let mut m = machine(
            r#"
            .org 0x400000
            start:
                mov rcx, 0
            loop:
                add rcx, 1
                jmp loop
            "#,
        );
        // `add rcx, 1` lives at 0x400000 + 10.
        m.stop_conditions.push(StopWhen::PcCount {
            pc: 0x40000a,
            count: 5,
        });
        let s = m.run(10_000);
        assert_eq!(s.reason, ExitReason::StopCondition(0));
        assert_eq!(m.threads[0].regs.read(elfie_isa::Reg::Rcx), 5);
    }

    #[test]
    fn graceful_exit_via_perf_counter() {
        let mut m = machine(
            r#"
            .org 0x400000
            start:
                mov rax, 10000     ; PERF_ARM_EXIT
                mov rdi, 20
                syscall
            spin:
                jmp spin
            "#,
        );
        let s = m.run(10_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
        // 3 startup instructions + 20 counted after arming.
        assert_eq!(m.threads[0].icount, 23);
    }

    #[test]
    fn interposer_skips_syscall() {
        struct SkipAll;
        impl SyscallInterposer for SkipAll {
            fn on_syscall(
                &mut self,
                _tid: u32,
                nr: u64,
                _args: [u64; 6],
                _mem: &mut Memory,
            ) -> SyscallAction {
                if nr == 96 {
                    // Inject a fixed gettimeofday result.
                    SyscallAction::Skip {
                        ret: 0,
                        writes: vec![(0x600000, vec![42u8; 8])],
                    }
                } else {
                    SyscallAction::PassThrough
                }
            }
        }
        let prog = assemble(
            r#"
            .org 0x400000
            start:
                mov rax, 96
                mov rdi, 0x600000
                mov rsi, 0
                syscall
                mov rax, 231
                mov rdi, 0
                syscall
            .org 0x600000
            tv: .zero 16
            "#,
        )
        .unwrap();
        let mut m = Machine::new(MachineConfig::default());
        m.load_program(&prog);
        m.set_interposer(Box::new(SkipAll));
        let s = m.run(1_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
        assert_eq!(m.mem.read_u8(0x600000).unwrap(), 42, "injected side effect");
    }

    #[test]
    fn futex_wait_wake() {
        let mut m = machine(
            r#"
            .org 0x400000
            start:
                mov rax, 56
                mov rdi, 0
                mov rsi, 0x7f00100000
                syscall
                cmp rax, 0
                je child
                ; parent: futex wait on word (value 0)
                mov rax, 202
                mov rdi, word
                mov rsi, 0          ; FUTEX_WAIT
                mov rdx, 0          ; expected value
                syscall
                mov rax, 231
                mov rdi, 0
                syscall
            child:
                mov rbx, word
                mov rdx, 1
                mov [rbx], rdx
                mov rax, 202
                mov rdi, word
                mov rsi, 1          ; FUTEX_WAKE
                mov rdx, 1
                syscall
                mov rax, 60
                mov rdi, 0
                syscall
            .align 8
            word: .quad 0
            "#,
        );
        m.mem
            .map_range(0x7f000f0000, 0x7f00100000, Perm::RW)
            .unwrap();
        let s = m.run(1_000_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
    }

    #[test]
    fn stack_randomization_changes_rsp() {
        let prog = assemble(&format!(".org 0x400000\nstart: nop{EXIT0}")).unwrap();
        let rsp_for = |seed| {
            let cfg = MachineConfig {
                seed,
                ..MachineConfig::default()
            };
            let mut m = Machine::new(cfg);
            m.load_program(&prog);
            m.threads[0].regs.rsp()
        };
        assert_eq!(rsp_for(5), rsp_for(5));
        assert_ne!(rsp_for(5), rsp_for(6), "different seeds slide the stack");
    }

    #[test]
    fn deadlock_detected() {
        let mut m = machine(
            r#"
            .org 0x400000
            start:
                mov rax, 202
                mov rdi, word
                mov rsi, 0
                mov rdx, 0
                syscall
            .align 8
            word: .quad 0
            "#,
        );
        let s = m.run(1_000);
        assert_eq!(s.reason, ExitReason::Deadlock);
    }

    #[test]
    fn cycles_exceed_insns_with_memory_traffic() {
        let mut m = machine(
            r#"
            .org 0x400000
            start:
                mov rcx, 0
                mov rbx, 0x2000000
            loop:
                mov rax, 12       ; brk to map heap? use direct mmap'd region instead
                add rcx, 1
                cmp rcx, 100
                jne loop
                mov rax, 231
                mov rdi, 0
                syscall
            "#,
        );
        let s = m.run(100_000);
        assert_eq!(s.reason, ExitReason::AllExited(0));
        assert!(s.cycles > s.insns);
    }
}
