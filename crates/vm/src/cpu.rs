//! The functional interpreter: executes one instruction at a time against
//! a [`Thread`] and a [`Memory`].
//!
//! The interpreter is deliberately free of scheduling policy — the
//! [`crate::machine::Machine`] (native execution), the PinPlay logger and
//! replayer, and the timing simulators all drive this same `step`
//! function, which is exactly the property the ELFie tool-chain relies on:
//! one functional ISA, many execution harnesses.

use crate::mem::{MemError, Memory};
use crate::obs::Observer;
use crate::thread::Thread;
use elfie_isa::{
    decode, AluOp, Cond, DecodeError, Flags, FpOp, Insn, MarkerKind, Mem, Seg, XSaveArea,
    XSAVE_AREA_SIZE,
};
use std::fmt;

/// Maximum encoded instruction length; the fetch window size.
pub const MAX_INSN_LEN: usize = 16;

/// A fault that terminates straight-line execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// A data access faulted.
    Mem(MemError),
    /// Instruction fetch faulted (unmapped / non-executable page).
    Fetch(MemError),
    /// The bytes at `rip` do not decode.
    Decode { rip: u64, err: DecodeError },
    /// Integer division by zero.
    DivideByZero { rip: u64 },
    /// A `UD2` instruction was executed.
    InvalidOpcode { rip: u64 },
}

impl fmt::Display for Fault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Fault::Mem(e) => write!(f, "memory fault: {e}"),
            Fault::Fetch(e) => write!(f, "fetch fault: {e}"),
            Fault::Decode { rip, err } => write!(f, "decode fault at {rip:#x}: {err}"),
            Fault::DivideByZero { rip } => write!(f, "divide by zero at {rip:#x}"),
            Fault::InvalidOpcode { rip } => write!(f, "invalid opcode (ud2) at {rip:#x}"),
        }
    }
}

impl std::error::Error for Fault {}

/// The outcome of executing one instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effect {
    /// Execution continues at the (already updated) `rip`.
    Normal,
    /// A `SYSCALL` executed; `rip` points at the next instruction and the
    /// kernel should now service the request.
    Syscall,
    /// A marker instruction executed (ROI boundary etc.).
    Marker(MarkerKind, u32),
    /// Execution faulted; `rip` still points at the faulting instruction.
    Fault(Fault),
}

/// Per-step environment provided by the execution harness.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepEnv {
    /// Value `RDTSC` returns (the harness's notion of time).
    pub tsc: u64,
}

#[inline]
fn ea(t: &Thread, m: &Mem) -> u64 {
    let mut a = m.disp as i64 as u64;
    if let Some(b) = m.base {
        a = a.wrapping_add(t.regs.read(b));
    }
    if let Some(i) = m.index {
        a = a.wrapping_add(t.regs.read(i).wrapping_mul(m.scale.value()));
    }
    match m.seg {
        Some(Seg::Fs) => a = a.wrapping_add(t.regs.fs_base),
        Some(Seg::Gs) => a = a.wrapping_add(t.regs.gs_base),
        None => {}
    }
    a
}

fn set_zs(flags: &mut Flags, v: u64) {
    flags.zf = v == 0;
    flags.sf = (v as i64) < 0;
}

fn add_with_flags(a: u64, b: u64, flags: &mut Flags) -> u64 {
    let (r, cf) = a.overflowing_add(b);
    let of = (a as i64).overflowing_add(b as i64).1;
    flags.cf = cf;
    flags.of = of;
    set_zs(flags, r);
    r
}

fn sub_with_flags(a: u64, b: u64, flags: &mut Flags) -> u64 {
    let (r, cf) = a.overflowing_sub(b);
    let of = (a as i64).overflowing_sub(b as i64).1;
    flags.cf = cf;
    flags.of = of;
    set_zs(flags, r);
    r
}

fn logic_flags(flags: &mut Flags, r: u64) {
    flags.cf = false;
    flags.of = false;
    set_zs(flags, r);
}

fn alu(op: AluOp, a: u64, b: u64, flags: &mut Flags, rip: u64) -> Result<u64, Fault> {
    Ok(match op {
        AluOp::Add => add_with_flags(a, b, flags),
        AluOp::Sub => sub_with_flags(a, b, flags),
        AluOp::And => {
            let r = a & b;
            logic_flags(flags, r);
            r
        }
        AluOp::Or => {
            let r = a | b;
            logic_flags(flags, r);
            r
        }
        AluOp::Xor => {
            let r = a ^ b;
            logic_flags(flags, r);
            r
        }
        AluOp::Shl => {
            let s = b & 63;
            let r = if s == 0 { a } else { a << s };
            if s > 0 {
                flags.cf = (a >> (64 - s)) & 1 != 0;
                flags.of = false;
                set_zs(flags, r);
            }
            r
        }
        AluOp::Shr => {
            let s = b & 63;
            let r = if s == 0 { a } else { a >> s };
            if s > 0 {
                flags.cf = (a >> (s - 1)) & 1 != 0;
                flags.of = false;
                set_zs(flags, r);
            }
            r
        }
        AluOp::Sar => {
            let s = b & 63;
            let r = if s == 0 { a } else { ((a as i64) >> s) as u64 };
            if s > 0 {
                flags.cf = ((a as i64) >> (s - 1)) & 1 != 0;
                flags.of = false;
                set_zs(flags, r);
            }
            r
        }
        AluOp::Imul => {
            let full = (a as i64 as i128) * (b as i64 as i128);
            let r = full as i64;
            let overflow = full != r as i128;
            flags.cf = overflow;
            flags.of = overflow;
            set_zs(flags, r as u64);
            r as u64
        }
        AluOp::Udiv => {
            if b == 0 {
                return Err(Fault::DivideByZero { rip });
            }
            a / b
        }
        AluOp::Urem => {
            if b == 0 {
                return Err(Fault::DivideByZero { rip });
            }
            a % b
        }
    })
}

/// Evaluates a branch condition against the flags.
pub fn cond_holds(flags: Flags, c: Cond) -> bool {
    match c {
        Cond::E => flags.zf,
        Cond::Ne => !flags.zf,
        Cond::L => flags.sf != flags.of,
        Cond::Le => flags.zf || flags.sf != flags.of,
        Cond::G => !flags.zf && flags.sf == flags.of,
        Cond::Ge => flags.sf == flags.of,
        Cond::B => flags.cf,
        Cond::Be => flags.cf || flags.zf,
        Cond::A => !flags.cf && !flags.zf,
        Cond::Ae => !flags.cf,
        Cond::S => flags.sf,
        Cond::Ns => !flags.sf,
    }
}

/// Fetches and decodes the instruction at the thread's `rip`.
pub fn fetch_decode(t: &Thread, mem: &Memory) -> Result<(Insn, usize), Fault> {
    let mut buf = [0u8; MAX_INSN_LEN];
    let n = mem.fetch(t.regs.rip, &mut buf).map_err(Fault::Fetch)?;
    decode(&buf[..n]).map_err(|err| Fault::Decode {
        rip: t.regs.rip,
        err,
    })
}

// NOTE: expands inside `step` and relies on its locals: on a data fault
// the instruction must NOT retire, so `rip` is rewound to the faulting
// instruction — crucial for harnesses that handle the fault (lazy page
// injection) and re-execute it.
macro_rules! try_mem {
    ($t:expr, $rip:expr, $e:expr) => {
        match $e {
            Ok(v) => v,
            Err(e) => {
                $t.regs.rip = $rip;
                return Effect::Fault(Fault::Mem(e));
            }
        }
    };
}

/// Executes one instruction on `t`, reporting data accesses to `obs`.
///
/// On [`Effect::Normal`]/[`Effect::Syscall`]/[`Effect::Marker`] the
/// instruction retired and `rip` has advanced; the caller is responsible
/// for instruction-count accounting. On [`Effect::Fault`] the thread state
/// is unchanged except for partially completed memory writes (as on real
/// hardware).
pub fn step<O: Observer>(t: &mut Thread, mem: &mut Memory, env: StepEnv, obs: &mut O) -> Effect {
    let (insn, len) = match fetch_decode(t, mem) {
        Ok(v) => v,
        Err(f) => return Effect::Fault(f),
    };
    exec(t, mem, insn, len, env, obs)
}

/// Executes one *already decoded* instruction at the thread's `rip`.
///
/// This is [`step`] minus fetch+decode: the block-cache fast path
/// ([`crate::bbcache`]) calls it with pre-decoded instructions. `insn` and
/// `len` must be exactly what [`fetch_decode`] would return for the
/// current `rip` — the observer callback order, flag effects and fault
/// semantics (data faults rewind `rip` so the instruction can be
/// re-executed after e.g. lazy page injection) are identical to `step`.
#[inline]
pub fn exec<O: Observer>(
    t: &mut Thread,
    mem: &mut Memory,
    insn: Insn,
    len: usize,
    env: StepEnv,
    obs: &mut O,
) -> Effect {
    let rip = t.regs.rip;
    obs.on_insn(t.tid, rip, &insn, len);
    let next = rip.wrapping_add(len as u64);
    t.regs.rip = next;

    macro_rules! read_mem {
        ($m:expr, $sz:expr, $read:ident) => {{
            let a = ea(t, &$m);
            obs.on_mem_read(t.tid, a, $sz);
            try_mem!(t, rip, mem.$read(a))
        }};
    }
    macro_rules! write_mem {
        ($m:expr, $sz:expr, $write:ident, $v:expr) => {{
            let a = ea(t, &$m);
            obs.on_mem_write(t.tid, a, $sz);
            try_mem!(t, rip, mem.$write(a, $v))
        }};
    }

    match insn {
        Insn::Nop | Insn::Pause | Insn::Mfence => {}
        Insn::MovRR(d, s) => {
            let v = t.regs.read(s);
            t.regs.write(d, v);
        }
        Insn::MovRI(d, imm) => t.regs.write(d, imm),
        Insn::Load(d, m) => {
            let v = read_mem!(m, 8, read_u64);
            t.regs.write(d, v);
        }
        Insn::Store(m, s) => {
            let v = t.regs.read(s);
            write_mem!(m, 8, write_u64, v);
        }
        Insn::LoadB(d, m) => {
            let v = read_mem!(m, 1, read_u8);
            t.regs.write(d, v as u64);
        }
        Insn::StoreB(m, s) => {
            let v = t.regs.read(s) as u8;
            write_mem!(m, 1, write_u8, v);
        }
        Insn::LoadW(d, m) => {
            let v = read_mem!(m, 4, read_u32);
            t.regs.write(d, v as u64);
        }
        Insn::StoreW(m, s) => {
            let v = t.regs.read(s) as u32;
            write_mem!(m, 4, write_u32, v);
        }
        Insn::Lea(d, m) => {
            let a = ea(t, &m);
            t.regs.write(d, a);
        }
        Insn::Push(r) => {
            let v = t.regs.read(r);
            let sp = t.regs.rsp().wrapping_sub(8);
            obs.on_mem_write(t.tid, sp, 8);
            try_mem!(t, rip, mem.write_u64(sp, v));
            t.regs.set_rsp(sp);
        }
        Insn::Pop(r) => {
            let sp = t.regs.rsp();
            obs.on_mem_read(t.tid, sp, 8);
            let v = try_mem!(t, rip, mem.read_u64(sp));
            t.regs.set_rsp(sp.wrapping_add(8));
            t.regs.write(r, v);
        }
        Insn::Pushfq => {
            let v = t.regs.flags.to_bits();
            let sp = t.regs.rsp().wrapping_sub(8);
            obs.on_mem_write(t.tid, sp, 8);
            try_mem!(t, rip, mem.write_u64(sp, v));
            t.regs.set_rsp(sp);
        }
        Insn::Popfq => {
            let sp = t.regs.rsp();
            obs.on_mem_read(t.tid, sp, 8);
            let v = try_mem!(t, rip, mem.read_u64(sp));
            t.regs.set_rsp(sp.wrapping_add(8));
            t.regs.flags = Flags::from_bits(v);
        }
        Insn::Xchg(m, r) => {
            let a = ea(t, &m);
            obs.on_mem_read(t.tid, a, 8);
            let old = try_mem!(t, rip, mem.read_u64(a));
            obs.on_mem_write(t.tid, a, 8);
            try_mem!(t, rip, mem.write_u64(a, t.regs.read(r)));
            t.regs.write(r, old);
        }
        Insn::AluRR(op, d, s) => {
            let a = t.regs.read(d);
            let b = t.regs.read(s);
            match alu(op, a, b, &mut t.regs.flags, rip) {
                Ok(r) => t.regs.write(d, r),
                Err(f) => {
                    t.regs.rip = rip;
                    return Effect::Fault(f);
                }
            }
        }
        Insn::AluRI(op, d, imm) => {
            let a = t.regs.read(d);
            let b = imm as i64 as u64;
            match alu(op, a, b, &mut t.regs.flags, rip) {
                Ok(r) => t.regs.write(d, r),
                Err(f) => {
                    t.regs.rip = rip;
                    return Effect::Fault(f);
                }
            }
        }
        Insn::Neg(r) => {
            let a = t.regs.read(r);
            let v = sub_with_flags(0, a, &mut t.regs.flags);
            t.regs.flags.cf = a != 0;
            t.regs.write(r, v);
        }
        Insn::Not(r) => {
            let v = !t.regs.read(r);
            t.regs.write(r, v);
        }
        Insn::CmpRR(a, b) => {
            let (x, y) = (t.regs.read(a), t.regs.read(b));
            sub_with_flags(x, y, &mut t.regs.flags);
        }
        Insn::CmpRI(a, imm) => {
            let x = t.regs.read(a);
            sub_with_flags(x, imm as i64 as u64, &mut t.regs.flags);
        }
        Insn::TestRR(a, b) => {
            let r = t.regs.read(a) & t.regs.read(b);
            logic_flags(&mut t.regs.flags, r);
        }
        Insn::Jmp(rel) => t.regs.rip = next.wrapping_add(rel as i64 as u64),
        Insn::JmpR(r) => t.regs.rip = t.regs.read(r),
        Insn::JmpM(m) => {
            let a = ea(t, &m);
            obs.on_mem_read(t.tid, a, 8);
            let target = try_mem!(t, rip, mem.read_u64(a));
            t.regs.rip = target;
        }
        Insn::Jcc(c, rel) => {
            if cond_holds(t.regs.flags, c) {
                t.regs.rip = next.wrapping_add(rel as i64 as u64);
            }
        }
        Insn::Call(rel) => {
            let sp = t.regs.rsp().wrapping_sub(8);
            obs.on_mem_write(t.tid, sp, 8);
            try_mem!(t, rip, mem.write_u64(sp, next));
            t.regs.set_rsp(sp);
            t.regs.rip = next.wrapping_add(rel as i64 as u64);
        }
        Insn::CallR(r) => {
            let target = t.regs.read(r);
            let sp = t.regs.rsp().wrapping_sub(8);
            obs.on_mem_write(t.tid, sp, 8);
            try_mem!(t, rip, mem.write_u64(sp, next));
            t.regs.set_rsp(sp);
            t.regs.rip = target;
        }
        Insn::Ret => {
            let sp = t.regs.rsp();
            obs.on_mem_read(t.tid, sp, 8);
            let ra = try_mem!(t, rip, mem.read_u64(sp));
            t.regs.set_rsp(sp.wrapping_add(8));
            t.regs.rip = ra;
        }
        Insn::LockXadd(m, r) => {
            let a = ea(t, &m);
            obs.on_mem_read(t.tid, a, 8);
            let old = try_mem!(t, rip, mem.read_u64(a));
            let sum = add_with_flags(old, t.regs.read(r), &mut t.regs.flags);
            obs.on_mem_write(t.tid, a, 8);
            try_mem!(t, rip, mem.write_u64(a, sum));
            t.regs.write(r, old);
        }
        Insn::LockCmpXchg(m, r) => {
            let a = ea(t, &m);
            obs.on_mem_read(t.tid, a, 8);
            let cur = try_mem!(t, rip, mem.read_u64(a));
            let expected = t.regs.read(elfie_isa::Reg::Rax);
            sub_with_flags(expected, cur, &mut t.regs.flags);
            if cur == expected {
                obs.on_mem_write(t.tid, a, 8);
                try_mem!(t, rip, mem.write_u64(a, t.regs.read(r)));
            } else {
                t.regs.write(elfie_isa::Reg::Rax, cur);
            }
        }
        Insn::RepMovs => {
            let count = t.regs.read(elfie_isa::Reg::Rcx);
            let src = t.regs.read(elfie_isa::Reg::Rsi);
            let dst = t.regs.read(elfie_isa::Reg::Rdi);
            let bytes = count.saturating_mul(8);
            if bytes > 0 {
                obs.on_mem_read(t.tid, src, bytes);
                obs.on_mem_write(t.tid, dst, bytes);
                // Copy in page-sized chunks to bound the scratch buffer.
                let mut off = 0u64;
                let mut buf = [0u8; 4096];
                while off < bytes {
                    let n = (bytes - off).min(4096) as usize;
                    try_mem!(t, rip, mem.read_bytes(src + off, &mut buf[..n]));
                    try_mem!(t, rip, mem.write_bytes(dst + off, &buf[..n]));
                    off += n as u64;
                }
            }
            t.regs.write(elfie_isa::Reg::Rsi, src.wrapping_add(bytes));
            t.regs.write(elfie_isa::Reg::Rdi, dst.wrapping_add(bytes));
            t.regs.write(elfie_isa::Reg::Rcx, 0);
        }
        Insn::Syscall => return Effect::Syscall,
        Insn::Rdtsc => {
            t.regs.write(elfie_isa::Reg::Rax, env.tsc);
            t.regs.write(elfie_isa::Reg::Rdx, 0);
        }
        Insn::Ud2 => {
            t.regs.rip = rip;
            return Effect::Fault(Fault::InvalidOpcode { rip });
        }
        Insn::Marker(k, tag) => {
            obs.on_marker(t.tid, k, tag);
            return Effect::Marker(k, tag);
        }
        Insn::RdFsBase(r) => {
            let v = t.regs.fs_base;
            t.regs.write(r, v);
        }
        Insn::WrFsBase(r) => t.regs.fs_base = t.regs.read(r),
        Insn::RdGsBase(r) => {
            let v = t.regs.gs_base;
            t.regs.write(r, v);
        }
        Insn::WrGsBase(r) => t.regs.gs_base = t.regs.read(r),
        Insn::Fxsave(m) | Insn::Xsave(m) => {
            let a = ea(t, &m);
            obs.on_mem_write(t.tid, a, XSAVE_AREA_SIZE as u64);
            try_mem!(t, rip, mem.write_bytes(a, &t.regs.xsave.to_bytes()));
        }
        Insn::Fxrstor(m) | Insn::Xrstor(m) => {
            let a = ea(t, &m);
            obs.on_mem_read(t.tid, a, XSAVE_AREA_SIZE as u64);
            let mut buf = [0u8; XSAVE_AREA_SIZE];
            try_mem!(t, rip, mem.read_bytes(a, &mut buf));
            t.regs.xsave = XSaveArea::from_bytes(&buf);
        }
        Insn::MovsdXM(x, m) => {
            let a = ea(t, &m);
            obs.on_mem_read(t.tid, a, 8);
            let v = try_mem!(t, rip, mem.read_u64(a));
            t.regs.xsave.write_u64(x, v);
        }
        Insn::MovsdMX(m, x) => {
            let v = t.regs.xsave.read_u64(x);
            let a = ea(t, &m);
            obs.on_mem_write(t.tid, a, 8);
            try_mem!(t, rip, mem.write_u64(a, v));
        }
        Insn::MovsdXX(d, s) => {
            let v = t.regs.xsave.read_u64(s);
            t.regs.xsave.write_u64(d, v);
        }
        Insn::FpRR(op, d, s) => {
            let a = t.regs.xsave.read_f64(d);
            let b = t.regs.xsave.read_f64(s);
            let r = match op {
                FpOp::Add => a + b,
                FpOp::Sub => a - b,
                FpOp::Mul => a * b,
                FpOp::Div => a / b,
                FpOp::Min => a.min(b),
                FpOp::Max => a.max(b),
                FpOp::Sqrt => b.sqrt(),
            };
            t.regs.xsave.write_f64(d, r);
        }
        Insn::Cvtsi2sd(x, r) => {
            let v = t.regs.read(r) as i64 as f64;
            t.regs.xsave.write_f64(x, v);
        }
        Insn::Cvttsd2si(r, x) => {
            let v = t.regs.xsave.read_f64(x);
            t.regs.write(r, v as i64 as u64);
        }
        Insn::Comisd(a, b) => {
            let (x, y) = (t.regs.xsave.read_f64(a), t.regs.xsave.read_f64(b));
            let f = &mut t.regs.flags;
            f.sf = false;
            f.of = false;
            if x.is_nan() || y.is_nan() {
                f.zf = true;
                f.cf = true;
            } else if x < y {
                f.zf = false;
                f.cf = true;
            } else if x == y {
                f.zf = true;
                f.cf = false;
            } else {
                f.zf = false;
                f.cf = false;
            }
        }
        Insn::MovqRX(r, x) => {
            let v = t.regs.xsave.read_u64(x);
            t.regs.write(r, v);
        }
        Insn::MovqXR(x, r) => {
            let v = t.regs.read(r);
            t.regs.xsave.write_u64(x, v);
        }
    }
    Effect::Normal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Perm;
    use crate::obs::NullObserver;
    use elfie_isa::{assemble, Reg, RegFile, Xmm};

    fn machine_for(src: &str) -> (Thread, Memory) {
        let p = assemble(src).expect("assembles");
        let mut mem = Memory::new();
        for c in &p.chunks {
            mem.map_range(c.addr, c.end().max(c.addr + 1), Perm::RWX)
                .unwrap();
            mem.write_bytes_unchecked(c.addr, &c.bytes).unwrap();
        }
        // Stack.
        mem.map_range(0x7000_0000, 0x7001_0000, Perm::RW).unwrap();
        let mut regs = RegFile::new();
        regs.rip = p.entry;
        regs.set_rsp(0x7001_0000);
        (Thread::new(0, regs), mem)
    }

    fn run(t: &mut Thread, mem: &mut Memory, max: usize) -> Effect {
        let mut obs = NullObserver;
        for i in 0..max {
            let env = StepEnv { tsc: i as u64 };
            match step(t, mem, env, &mut obs) {
                Effect::Normal => {}
                e => return e,
            }
        }
        panic!("did not terminate in {max} steps");
    }

    #[test]
    fn arithmetic_and_flags() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 10
                mov rbx, 3
                sub rax, rbx      ; 7
                imul rax, rbx     ; 21
                mov rcx, 5
                udiv rax, rcx     ; 4
                urem rbx, rcx     ; 3
                syscall
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rax), 4);
        assert_eq!(t.regs.read(Reg::Rbx), 3);
    }

    #[test]
    fn loop_with_branches() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 0
                mov rcx, 10
            loop:
                add rax, rcx
                sub rcx, 1
                cmp rcx, 0
                jne loop
                syscall
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 1000), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rax), 55);
    }

    #[test]
    fn call_ret_and_stack() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rdi, 5
                call double
                syscall
            double:
                mov rax, rdi
                add rax, rdi
                ret
            "#,
        );
        let sp0 = t.regs.rsp();
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rax), 10);
        assert_eq!(t.regs.rsp(), sp0, "stack balanced");
    }

    #[test]
    fn memory_loads_and_stores() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rbx, buf
                mov rax, 0x11223344aabbccdd
                mov [rbx], rax
                movd rcx, [rbx]          ; low 32, zero-extended
                movb rdx, [rbx + 3]      ; byte 3 (LE: 0xaa)
                syscall
            .align 8
            buf: .zero 16
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rcx), 0xaabbccdd);
        assert_eq!(t.regs.read(Reg::Rdx), 0xaa);
    }

    #[test]
    fn signed_and_unsigned_conditions() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 0
                sub rax, 1        ; rax = -1 (unsigned max)
                mov rbx, 1
                cmp rax, rbx
                jl signed_less
                syscall           ; must not reach via fallthrough
            signed_less:
                cmp rax, rbx
                ja unsigned_above
                ud2
            unsigned_above:
                mov rdi, 1
                syscall
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rdi), 1);
    }

    #[test]
    fn atomic_xadd_and_cmpxchg() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rbx, word
                mov rcx, 5
                xadd [rbx], rcx      ; word=15, rcx=10
                mov rax, 15
                mov rdx, 99
                cmpxchg [rbx], rdx   ; succeeds: word=99, ZF
                jne fail
                mov rax, 15
                cmpxchg [rbx], rdx   ; fails: rax=99
                je fail
                syscall
            fail:
                ud2
            .align 8
            word: .quad 10
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rcx), 10);
        assert_eq!(t.regs.read(Reg::Rax), 99);
        let word = mem.read_u64(0x1000).ok();
        let _ = word; // address of `word` label not needed; value checked via rax
    }

    #[test]
    fn fp_pipeline() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 9
                cvtsi2sd xmm0, rax
                sqrtsd xmm1, xmm0       ; 3.0
                addsd xmm1, xmm1        ; 6.0
                cvttsd2si rbx, xmm1
                syscall
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rbx), 6);
        assert_eq!(t.regs.xsave.read_f64(Xmm(1)), 6.0);
    }

    #[test]
    fn comisd_sets_flags() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 1
                cvtsi2sd xmm0, rax
                mov rax, 2
                cvtsi2sd xmm1, rax
                comisd xmm0, xmm1
                jb less
                ud2
            less:
                syscall
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
    }

    #[test]
    fn fxsave_fxrstor_roundtrip() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 7
                cvtsi2sd xmm3, rax
                mov rbx, area
                fxsave [rbx]
                mov rax, 0
                cvtsi2sd xmm3, rax      ; clobber
                fxrstor [rbx]
                syscall
            .align 16
            area: .zero 512
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.xsave.read_f64(Xmm(3)), 7.0);
    }

    #[test]
    fn segment_base_addressing() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, tls
                wrfsbase rax
                mov rbx, fs:[8]
                rdfsbase rcx
                syscall
            .align 8
            tls: .quad 0, 424242
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
        assert_eq!(t.regs.read(Reg::Rbx), 424242);
        assert_eq!(t.regs.read(Reg::Rcx), t.regs.fs_base);
    }

    #[test]
    fn ud2_faults_without_advancing_rip() {
        let (mut t, mut mem) = machine_for(".org 0x1000\nstart: ud2\n");
        let e = run(&mut t, &mut mem, 10);
        assert_eq!(e, Effect::Fault(Fault::InvalidOpcode { rip: 0x1000 }));
        assert_eq!(t.regs.rip, 0x1000);
    }

    #[test]
    fn divide_by_zero_faults() {
        let (mut t, mut mem) =
            machine_for(".org 0x1000\nstart:\n mov rax, 1\n mov rbx, 0\n udiv rax, rbx\n");
        match run(&mut t, &mut mem, 10) {
            Effect::Fault(Fault::DivideByZero { .. }) => {}
            e => panic!("expected divide fault, got {e:?}"),
        }
    }

    #[test]
    fn jump_to_unmapped_page_is_fetch_fault() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 0x900000
                jmp rax
            "#,
        );
        match run(&mut t, &mut mem, 10) {
            Effect::Fault(Fault::Fetch(MemError::Unmapped { addr, .. })) => {
                assert_eq!(addr, 0x900000);
            }
            e => panic!("expected fetch fault, got {e:?}"),
        }
    }

    #[test]
    fn executing_data_decodes_or_faults_eventually() {
        // Jump into a page full of 0xee bytes: must decode-fault.
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, data
                jmp rax
            data: .byte 0xee, 0xee
            "#,
        );
        match run(&mut t, &mut mem, 10) {
            Effect::Fault(Fault::Decode { .. }) => {}
            e => panic!("expected decode fault, got {e:?}"),
        }
    }

    #[test]
    fn rdtsc_returns_env_time() {
        let (mut t, mut mem) = machine_for(".org 0x1000\nstart: rdtsc\nsyscall\n");
        let mut obs = NullObserver;
        let e = step(&mut t, &mut mem, StepEnv { tsc: 1234 }, &mut obs);
        assert_eq!(e, Effect::Normal);
        assert_eq!(t.regs.read(Reg::Rax), 1234);
    }

    #[test]
    fn marker_effect_reported() {
        let (mut t, mut mem) = machine_for(".org 0x1000\nstart: marker ssc, 7\n");
        let mut obs = NullObserver;
        let e = step(&mut t, &mut mem, StepEnv::default(), &mut obs);
        assert_eq!(e, Effect::Marker(MarkerKind::Ssc, 7));
    }

    #[test]
    fn pushfq_popfq_roundtrip_flags() {
        let (mut t, mut mem) = machine_for(
            r#"
            .org 0x1000
            start:
                mov rax, 0
                cmp rax, 0       ; ZF set
                pushfq
                mov rbx, 1
                cmp rbx, 0       ; ZF clear
                popfq
                je ok            ; ZF restored
                ud2
            ok:
                syscall
            "#,
        );
        assert_eq!(run(&mut t, &mut mem, 100), Effect::Syscall);
    }
}
