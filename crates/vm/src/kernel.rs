//! The emulated Linux-like kernel: system call numbers, the file
//! descriptor table, heap (`brk`) and `mmap` management, `clone`, time,
//! futexes and the performance-counter interface used by the graceful-exit
//! mechanism.
//!
//! System call numbers and the register convention (`RAX` = number,
//! `RDI,RSI,RDX,R10,R8,R9` = arguments, `RAX` = result, negative errno on
//! failure) follow Linux x86-64, so guest assembly reads like real
//! syscall-level code.

use crate::fs::{resolve_path, InMemoryFs};
use crate::mem::{Memory, Perm};
use crate::thread::Thread;
use elfie_isa::{page_align_up, Reg, RegFile};

/// System call numbers (Linux x86-64 where applicable).
pub mod nr {
    pub const READ: u64 = 0;
    pub const WRITE: u64 = 1;
    pub const OPEN: u64 = 2;
    pub const CLOSE: u64 = 3;
    pub const LSEEK: u64 = 8;
    pub const MMAP: u64 = 9;
    pub const MPROTECT: u64 = 10;
    pub const MUNMAP: u64 = 11;
    pub const BRK: u64 = 12;
    pub const SCHED_YIELD: u64 = 24;
    pub const DUP: u64 = 32;
    pub const DUP2: u64 = 33;
    pub const GETPID: u64 = 39;
    pub const CLONE: u64 = 56;
    pub const EXIT: u64 = 60;
    pub const CHDIR: u64 = 80;
    pub const GETTIMEOFDAY: u64 = 96;
    pub const PRCTL: u64 = 157;
    pub const FUTEX: u64 = 202;
    pub const EXIT_GROUP: u64 = 231;
    /// Arm the calling thread's retired-instruction counter to exit the
    /// thread after `arg0` further instructions. Models the
    /// `perf_event_open`-based graceful-exit support in `libperfle`.
    pub const PERF_ARM_EXIT: u64 = 10_000;
    /// Read the calling thread's retired-instruction counter.
    pub const PERF_READ_ICOUNT: u64 = 10_001;
    /// Read the calling thread's cycle counter.
    pub const PERF_READ_CYCLES: u64 = 10_002;
    /// Number of live (non-exited) threads in the process. Serviced by the
    /// machine, not the kernel; used by the ELFie monitor thread
    /// (`elfie_on_exit`) to wait for application exit.
    pub const LIVE_THREADS: u64 = 10_003;
}

/// Errno values (as positive constants; returns encode `-errno`).
pub mod errno {
    pub const ENOENT: u64 = 2;
    pub const EAGAIN: u64 = 11;
    pub const ENOMEM: u64 = 12;
    pub const EFAULT: u64 = 14;
    pub const EINVAL: u64 = 22;
    pub const EBADF: u64 = 9;
    pub const ENOSYS: u64 = 38;
}

/// Encodes `-errno` in the Linux return convention.
pub const fn neg_errno(e: u64) -> u64 {
    (-(e as i64)) as u64
}

/// True if a syscall return value encodes an error.
pub const fn is_error(ret: u64) -> bool {
    ret > (-4096i64) as u64
}

const O_ACCMODE: u64 = 3;
const O_WRONLY: u64 = 1;
const O_CREAT: u64 = 0x40;
const O_TRUNC: u64 = 0x200;
const O_APPEND: u64 = 0x400;

/// `prctl` option for modifying process memory map fields.
pub const PR_SET_MM: u64 = 35;
/// `prctl(PR_SET_MM, ...)` sub-option: set the heap start.
pub const PR_SET_MM_START_BRK: u64 = 6;
/// `prctl(PR_SET_MM, ...)` sub-option: set the current break.
pub const PR_SET_MM_BRK: u64 = 7;

const FUTEX_WAIT: u64 = 0;
const FUTEX_WAKE: u64 = 1;

/// An open file description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileDesc {
    /// Backing object.
    pub kind: FdKind,
    /// Current offset (files only).
    pub offset: u64,
    /// Open flags as passed to `open`.
    pub flags: u64,
}

/// What a file descriptor refers to.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FdKind {
    /// Standard input (reads return EOF).
    Stdin,
    /// Standard output (captured into [`Kernel::stdout`]).
    Stdout,
    /// Standard error (captured into [`Kernel::stderr`]).
    Stderr,
    /// A regular file in the in-memory filesystem (absolute path).
    File(String),
}

/// Scheduling/side-band action requested by a syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Control {
    /// Continue normally.
    Normal,
    /// The calling thread exits with the given code.
    ThreadExit(i32),
    /// Every thread exits (exit_group).
    ProcessExit(i32),
    /// Spawn a new thread with the given initial registers (`clone`); the
    /// machine assigns the tid and patches the parent's return value.
    Spawn(Box<RegFile>),
    /// Reschedule (sched_yield).
    Yield,
    /// Block the calling thread on the futex word at the address.
    FutexWait(u64),
    /// Wake up to `count` waiters on the futex word.
    FutexWake { addr: u64, count: u64 },
    /// Arm the calling thread's graceful-exit counter for `target`
    /// retirements.
    ArmExitCounter(u64),
}

/// The full result of servicing one syscall.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SyscallOutcome {
    /// Return value for `RAX` (negative errno on failure).
    pub ret: u64,
    /// Guest-memory regions written while servicing the call. Recorded by
    /// the PinPlay logger so replay can inject them.
    pub writes: Vec<(u64, Vec<u8>)>,
    /// Scheduling action.
    pub control: Control,
}

impl SyscallOutcome {
    fn ok(ret: u64) -> SyscallOutcome {
        SyscallOutcome {
            ret,
            writes: Vec::new(),
            control: Control::Normal,
        }
    }

    fn err(e: u64) -> SyscallOutcome {
        SyscallOutcome::ok(neg_errno(e))
    }
}

/// Kernel configuration.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Initial heap start (and break).
    pub brk_base: u64,
    /// Search base for anonymous `mmap`.
    pub mmap_base: u64,
    /// Wall-clock epoch in nanoseconds added to the cycle-derived clock;
    /// varies run to run so `gettimeofday` is non-repeatable, like the
    /// paper's canonical non-deterministic syscall.
    pub epoch_ns: u64,
    /// Process id reported by `getpid`.
    pub pid: u64,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            brk_base: 0x0800_0000,
            mmap_base: 0x2000_0000,
            epoch_ns: 1_600_000_000_000_000_000,
            pid: 4242,
        }
    }
}

/// The emulated kernel state for one guest process.
#[derive(Debug)]
pub struct Kernel {
    /// Backing filesystem.
    pub fs: InMemoryFs,
    /// Current working directory (absolute).
    pub cwd: String,
    /// Captured standard output.
    pub stdout: Vec<u8>,
    /// Captured standard error.
    pub stderr: Vec<u8>,
    fds: Vec<Option<FileDesc>>,
    brk_start: u64,
    brk: u64,
    mmap_hint: u64,
    cfg: KernelConfig,
    /// History of `brk` results, in order — the data `pinball_sysstate`
    /// extracts into `BRK.log` (first and last values).
    pub brk_history: Vec<u64>,
}

impl Kernel {
    /// Creates a kernel with the given configuration.
    pub fn new(cfg: KernelConfig) -> Kernel {
        let fds = vec![
            Some(FileDesc {
                kind: FdKind::Stdin,
                offset: 0,
                flags: 0,
            }),
            Some(FileDesc {
                kind: FdKind::Stdout,
                offset: 0,
                flags: 1,
            }),
            Some(FileDesc {
                kind: FdKind::Stderr,
                offset: 0,
                flags: 1,
            }),
        ];
        Kernel {
            fs: InMemoryFs::new(),
            cwd: "/".to_string(),
            stdout: Vec::new(),
            stderr: Vec::new(),
            fds,
            brk_start: cfg.brk_base,
            brk: cfg.brk_base,
            mmap_hint: cfg.mmap_base,
            cfg,
            brk_history: Vec::new(),
        }
    }

    /// Current program break.
    pub fn brk(&self) -> u64 {
        self.brk
    }

    /// Heap start.
    pub fn brk_start(&self) -> u64 {
        self.brk_start
    }

    /// Restores the heap layout captured in a checkpoint: sets both the
    /// heap start and the current break without mapping pages (the
    /// checkpoint's memory image carries the pages themselves).
    pub fn set_brk(&mut self, start: u64, current: u64) {
        self.brk_start = start;
        self.brk = current;
    }

    /// Direct access to the descriptor table (for checkpoint tooling).
    pub fn fd(&self, fd: u64) -> Option<&FileDesc> {
        self.fds.get(fd as usize).and_then(|f| f.as_ref())
    }

    /// Installs a descriptor at a specific number, as `dup2` would —
    /// used by the generic ELFie `elfie_on_start` callback to pre-open
    /// `FD_n` proxy files from a sysstate directory.
    pub fn install_fd(&mut self, fd: u64, desc: FileDesc) {
        let idx = fd as usize;
        if self.fds.len() <= idx {
            self.fds.resize(idx + 1, None);
        }
        self.fds[idx] = Some(desc);
    }

    fn alloc_fd(&mut self, desc: FileDesc) -> u64 {
        for (i, slot) in self.fds.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(desc);
                return i as u64;
            }
        }
        self.fds.push(Some(desc));
        (self.fds.len() - 1) as u64
    }

    /// Services the syscall currently pending on `t` (which must have just
    /// executed a `SYSCALL` instruction). `now_ns` is the machine's clock.
    pub fn handle(&mut self, t: &mut Thread, mem: &mut Memory, now_ns: u64) -> SyscallOutcome {
        let nr = t.regs.read(Reg::Rax);
        let args = [
            t.regs.read(Reg::Rdi),
            t.regs.read(Reg::Rsi),
            t.regs.read(Reg::Rdx),
            t.regs.read(Reg::R10),
            t.regs.read(Reg::R8),
            t.regs.read(Reg::R9),
        ];
        match nr {
            nr::READ => self.sys_read(mem, args),
            nr::WRITE => self.sys_write(mem, args),
            nr::OPEN => self.sys_open(mem, args),
            nr::CLOSE => self.sys_close(args),
            nr::LSEEK => self.sys_lseek(args),
            nr::MMAP => self.sys_mmap(mem, args),
            nr::MPROTECT => self.sys_mprotect(mem, args),
            nr::MUNMAP => self.sys_munmap(mem, args),
            nr::BRK => self.sys_brk(mem, args),
            nr::SCHED_YIELD => SyscallOutcome {
                ret: 0,
                writes: Vec::new(),
                control: Control::Yield,
            },
            nr::DUP => self.sys_dup(args),
            nr::DUP2 => self.sys_dup2(args),
            nr::GETPID => SyscallOutcome::ok(self.cfg.pid),
            nr::CLONE => self.sys_clone(t, args),
            nr::EXIT => SyscallOutcome {
                ret: 0,
                writes: Vec::new(),
                control: Control::ThreadExit(args[0] as i32),
            },
            nr::EXIT_GROUP => SyscallOutcome {
                ret: 0,
                writes: Vec::new(),
                control: Control::ProcessExit(args[0] as i32),
            },
            nr::CHDIR => self.sys_chdir(mem, args),
            nr::GETTIMEOFDAY => self.sys_gettimeofday(mem, args, now_ns),
            nr::PRCTL => self.sys_prctl(mem, args),
            nr::FUTEX => self.sys_futex(mem, args),
            nr::PERF_ARM_EXIT => SyscallOutcome {
                ret: 0,
                writes: Vec::new(),
                control: Control::ArmExitCounter(args[0]),
            },
            nr::PERF_READ_ICOUNT => SyscallOutcome::ok(t.icount),
            nr::PERF_READ_CYCLES => SyscallOutcome::ok(t.cycles),
            _ => SyscallOutcome::err(errno::ENOSYS),
        }
    }

    fn sys_read(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [fd, buf, count, ..] = args;
        let desc = match self.fds.get_mut(fd as usize).and_then(|f| f.as_mut()) {
            Some(d) => d,
            None => return SyscallOutcome::err(errno::EBADF),
        };
        match desc.kind.clone() {
            FdKind::Stdin => SyscallOutcome::ok(0), // EOF
            FdKind::Stdout | FdKind::Stderr => SyscallOutcome::err(errno::EBADF),
            FdKind::File(path) => {
                let mut data = vec![0u8; count as usize];
                let n = match self.fs.read_at(&path, desc.offset, &mut data) {
                    Some(n) => n,
                    None => return SyscallOutcome::err(errno::ENOENT),
                };
                desc.offset += n as u64;
                data.truncate(n);
                if mem.write_bytes(buf, &data).is_err() {
                    return SyscallOutcome::err(errno::EFAULT);
                }
                SyscallOutcome {
                    ret: n as u64,
                    writes: vec![(buf, data)],
                    control: Control::Normal,
                }
            }
        }
    }

    fn sys_write(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [fd, buf, count, ..] = args;
        let mut data = vec![0u8; count as usize];
        if mem.read_bytes(buf, &mut data).is_err() {
            return SyscallOutcome::err(errno::EFAULT);
        }
        let desc = match self.fds.get_mut(fd as usize).and_then(|f| f.as_mut()) {
            Some(d) => d,
            None => return SyscallOutcome::err(errno::EBADF),
        };
        match desc.kind.clone() {
            FdKind::Stdout => {
                self.stdout.extend_from_slice(&data);
                SyscallOutcome::ok(count)
            }
            FdKind::Stderr => {
                self.stderr.extend_from_slice(&data);
                SyscallOutcome::ok(count)
            }
            FdKind::Stdin => SyscallOutcome::err(errno::EBADF),
            FdKind::File(path) => {
                let off = if desc.flags & O_APPEND != 0 {
                    self.fs.size(&path).unwrap_or(0)
                } else {
                    desc.offset
                };
                match self.fs.write_at(&path, off, &data) {
                    Some(n) => {
                        desc.offset = off + n as u64;
                        SyscallOutcome::ok(n as u64)
                    }
                    None => SyscallOutcome::err(errno::ENOENT),
                }
            }
        }
    }

    fn sys_open(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [path_ptr, flags, _mode, ..] = args;
        let raw = match mem.read_cstr(path_ptr, 4096) {
            Ok(s) => s,
            Err(_) => return SyscallOutcome::err(errno::EFAULT),
        };
        let path = resolve_path(&self.cwd, &raw);
        if !self.fs.exists(&path) {
            if flags & O_CREAT != 0 {
                self.fs.put(&path, Vec::new());
            } else {
                return SyscallOutcome::err(errno::ENOENT);
            }
        } else if flags & O_TRUNC != 0 && flags & O_ACCMODE != 0 {
            self.fs.truncate(&path);
        }
        let _ = flags & O_WRONLY;
        let fd = self.alloc_fd(FileDesc {
            kind: FdKind::File(path),
            offset: 0,
            flags,
        });
        SyscallOutcome::ok(fd)
    }

    fn sys_close(&mut self, args: [u64; 6]) -> SyscallOutcome {
        let fd = args[0] as usize;
        match self.fds.get_mut(fd) {
            Some(slot @ Some(_)) => {
                *slot = None;
                SyscallOutcome::ok(0)
            }
            _ => SyscallOutcome::err(errno::EBADF),
        }
    }

    fn sys_lseek(&mut self, args: [u64; 6]) -> SyscallOutcome {
        let [fd, off, whence, ..] = args;
        let size = match self.fds.get(fd as usize).and_then(|f| f.as_ref()) {
            Some(FileDesc {
                kind: FdKind::File(p),
                ..
            }) => self.fs.size(p).unwrap_or(0),
            Some(_) => return SyscallOutcome::err(errno::EINVAL),
            None => return SyscallOutcome::err(errno::EBADF),
        };
        let desc = self.fds[fd as usize].as_mut().expect("checked above");
        let new = match whence {
            0 => off as i64,                      // SEEK_SET
            1 => desc.offset as i64 + off as i64, // SEEK_CUR
            2 => size as i64 + off as i64,        // SEEK_END
            _ => return SyscallOutcome::err(errno::EINVAL),
        };
        if new < 0 {
            return SyscallOutcome::err(errno::EINVAL);
        }
        desc.offset = new as u64;
        SyscallOutcome::ok(new as u64)
    }

    fn sys_mmap(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [addr, len, _prot, _flags, fd, _off] = args;
        if len == 0 {
            return SyscallOutcome::err(errno::EINVAL);
        }
        if (fd as i64) >= 0 && fd != u64::MAX {
            // File-backed mappings are not supported by the emulated
            // kernel; statically linked ELFies never need them.
            return SyscallOutcome::err(errno::ENOSYS);
        }
        let len = page_align_up(len);
        let base = if addr != 0 { addr } else { self.mmap_hint };
        let got = mem.find_gap(base, len);
        if mem.map_range(got, got + len, Perm::RW).is_err() {
            return SyscallOutcome::err(errno::ENOMEM);
        }
        if addr == 0 {
            self.mmap_hint = got + len;
        }
        SyscallOutcome::ok(got)
    }

    fn sys_mprotect(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [addr, len, prot, ..] = args;
        if len == 0 {
            return SyscallOutcome::err(errno::EINVAL);
        }
        mem.protect_range(addr, addr + page_align_up(len), Perm::from_bits(prot as u8));
        SyscallOutcome::ok(0)
    }

    fn sys_munmap(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [addr, len, ..] = args;
        if len == 0 {
            return SyscallOutcome::err(errno::EINVAL);
        }
        mem.unmap_range(addr, addr + page_align_up(len));
        SyscallOutcome::ok(0)
    }

    fn sys_brk(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let want = args[0];
        if want != 0 {
            let cur = page_align_up(self.brk);
            let new = page_align_up(want);
            if want >= self.brk_start {
                if new > cur {
                    if mem
                        .map_range(cur.max(self.brk_start), new, Perm::RW)
                        .is_err()
                    {
                        return SyscallOutcome::err(errno::ENOMEM);
                    }
                } else if new < cur {
                    mem.unmap_range(new, cur);
                }
                self.brk = want;
            }
        }
        self.brk_history.push(self.brk);
        SyscallOutcome::ok(self.brk)
    }

    fn sys_dup(&mut self, args: [u64; 6]) -> SyscallOutcome {
        let fd = args[0] as usize;
        match self.fds.get(fd).and_then(|f| f.clone()) {
            Some(desc) => SyscallOutcome::ok(self.alloc_fd(desc)),
            None => SyscallOutcome::err(errno::EBADF),
        }
    }

    fn sys_dup2(&mut self, args: [u64; 6]) -> SyscallOutcome {
        let [old, new, ..] = args;
        match self.fds.get(old as usize).and_then(|f| f.clone()) {
            Some(desc) => {
                self.install_fd(new, desc);
                SyscallOutcome::ok(new)
            }
            None => SyscallOutcome::err(errno::EBADF),
        }
    }

    fn sys_clone(&mut self, t: &Thread, args: [u64; 6]) -> SyscallOutcome {
        let [_flags, child_stack, ..] = args;
        if child_stack == 0 {
            return SyscallOutcome::err(errno::EINVAL);
        }
        let mut regs = t.regs.clone();
        regs.write(Reg::Rax, 0);
        regs.set_rsp(child_stack);
        SyscallOutcome {
            // Parent return value patched by the machine with the new tid.
            ret: 0,
            writes: Vec::new(),
            control: Control::Spawn(Box::new(regs)),
        }
    }

    fn sys_chdir(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let raw = match mem.read_cstr(args[0], 4096) {
            Ok(s) => s,
            Err(_) => return SyscallOutcome::err(errno::EFAULT),
        };
        self.cwd = resolve_path(&self.cwd, &raw);
        SyscallOutcome::ok(0)
    }

    fn sys_gettimeofday(
        &mut self,
        mem: &mut Memory,
        args: [u64; 6],
        now_ns: u64,
    ) -> SyscallOutcome {
        let tv = args[0];
        if tv == 0 {
            return SyscallOutcome::err(errno::EFAULT);
        }
        let total_ns = self.cfg.epoch_ns + now_ns;
        let sec = total_ns / 1_000_000_000;
        let usec = (total_ns % 1_000_000_000) / 1_000;
        let mut bytes = Vec::with_capacity(16);
        bytes.extend_from_slice(&sec.to_le_bytes());
        bytes.extend_from_slice(&usec.to_le_bytes());
        if mem.write_bytes(tv, &bytes).is_err() {
            return SyscallOutcome::err(errno::EFAULT);
        }
        SyscallOutcome {
            ret: 0,
            writes: vec![(tv, bytes)],
            control: Control::Normal,
        }
    }

    fn sys_prctl(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [option, sub, value, ..] = args;
        if option != PR_SET_MM {
            return SyscallOutcome::err(errno::EINVAL);
        }
        match sub {
            PR_SET_MM_START_BRK => {
                self.brk_start = value;
                SyscallOutcome::ok(0)
            }
            PR_SET_MM_BRK => {
                // Used by the ELFie startup callback to recreate the heap
                // layout recorded in BRK.log.
                let start = page_align_up(self.brk_start);
                let end = page_align_up(value);
                if end > start && mem.map_range(start, end, Perm::RW).is_err() {
                    return SyscallOutcome::err(errno::ENOMEM);
                }
                self.brk = value;
                SyscallOutcome::ok(0)
            }
            _ => SyscallOutcome::err(errno::EINVAL),
        }
    }

    fn sys_futex(&mut self, mem: &mut Memory, args: [u64; 6]) -> SyscallOutcome {
        let [addr, op, val, ..] = args;
        match op & 0x7f {
            FUTEX_WAIT => {
                let cur = match mem.read_u32(addr) {
                    Ok(v) => v,
                    Err(_) => return SyscallOutcome::err(errno::EFAULT),
                };
                if cur as u64 != val {
                    SyscallOutcome::err(errno::EAGAIN)
                } else {
                    SyscallOutcome {
                        ret: 0,
                        writes: Vec::new(),
                        control: Control::FutexWait(addr),
                    }
                }
            }
            FUTEX_WAKE => SyscallOutcome {
                ret: 0, // patched by the machine with the woken count
                writes: Vec::new(),
                control: Control::FutexWake { addr, count: val },
            },
            _ => SyscallOutcome::err(errno::ENOSYS),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mem::Perm;

    fn setup() -> (Kernel, Thread, Memory) {
        let k = Kernel::new(KernelConfig::default());
        let t = Thread::new(0, RegFile::new());
        let mut m = Memory::new();
        m.map_range(0x1000, 0x3000, Perm::RW).unwrap();
        (k, t, m)
    }

    fn call(
        k: &mut Kernel,
        t: &mut Thread,
        m: &mut Memory,
        nr: u64,
        args: &[u64],
    ) -> SyscallOutcome {
        t.regs.write(Reg::Rax, nr);
        let regs = [Reg::Rdi, Reg::Rsi, Reg::Rdx, Reg::R10, Reg::R8, Reg::R9];
        for (i, &a) in args.iter().enumerate() {
            t.regs.write(regs[i], a);
        }
        for r in regs.iter().skip(args.len()) {
            t.regs.write(*r, 0);
        }
        k.handle(t, m, 0)
    }

    #[test]
    fn open_read_close_roundtrip() {
        let (mut k, mut t, mut m) = setup();
        k.fs.put("/input.txt", b"abcdef".to_vec());
        m.write_bytes(0x1000, b"/input.txt\0").unwrap();
        let fd = call(&mut k, &mut t, &mut m, nr::OPEN, &[0x1000, 0, 0]).ret;
        assert!(!is_error(fd));
        let out = call(&mut k, &mut t, &mut m, nr::READ, &[fd, 0x2000, 4]);
        assert_eq!(out.ret, 4);
        assert_eq!(
            out.writes.len(),
            1,
            "side effect recorded for replay injection"
        );
        let mut buf = [0u8; 4];
        m.read_bytes(0x2000, &mut buf).unwrap();
        assert_eq!(&buf, b"abcd");
        // Second read continues at the file offset.
        let out2 = call(&mut k, &mut t, &mut m, nr::READ, &[fd, 0x2000, 4]);
        assert_eq!(out2.ret, 2);
        assert_eq!(call(&mut k, &mut t, &mut m, nr::CLOSE, &[fd]).ret, 0);
        assert!(is_error(
            call(&mut k, &mut t, &mut m, nr::READ, &[fd, 0x2000, 1]).ret
        ));
    }

    #[test]
    fn open_missing_file_fails_without_creat() {
        let (mut k, mut t, mut m) = setup();
        m.write_bytes(0x1000, b"/nope\0").unwrap();
        let r = call(&mut k, &mut t, &mut m, nr::OPEN, &[0x1000, 0, 0]).ret;
        assert_eq!(r, neg_errno(errno::ENOENT));
        let r2 = call(&mut k, &mut t, &mut m, nr::OPEN, &[0x1000, O_CREAT, 0]).ret;
        assert!(!is_error(r2));
        assert!(k.fs.exists("/nope"));
    }

    #[test]
    fn write_to_stdout_is_captured() {
        let (mut k, mut t, mut m) = setup();
        m.write_bytes(0x1000, b"hello").unwrap();
        let r = call(&mut k, &mut t, &mut m, nr::WRITE, &[1, 0x1000, 5]);
        assert_eq!(r.ret, 5);
        assert_eq!(k.stdout, b"hello");
    }

    #[test]
    fn lseek_whence_forms() {
        let (mut k, mut t, mut m) = setup();
        k.fs.put("/f", b"0123456789".to_vec());
        m.write_bytes(0x1000, b"/f\0").unwrap();
        let fd = call(&mut k, &mut t, &mut m, nr::OPEN, &[0x1000, 0, 0]).ret;
        assert_eq!(call(&mut k, &mut t, &mut m, nr::LSEEK, &[fd, 4, 0]).ret, 4);
        assert_eq!(call(&mut k, &mut t, &mut m, nr::LSEEK, &[fd, 2, 1]).ret, 6);
        assert_eq!(
            call(&mut k, &mut t, &mut m, nr::LSEEK, &[fd, (-3i64) as u64, 2]).ret,
            7
        );
        assert!(is_error(
            call(&mut k, &mut t, &mut m, nr::LSEEK, &[fd, 0, 9]).ret
        ));
    }

    #[test]
    fn brk_grows_and_shrinks_heap() {
        let (mut k, mut t, mut m) = setup();
        let base = call(&mut k, &mut t, &mut m, nr::BRK, &[0]).ret;
        assert_eq!(base, KernelConfig::default().brk_base);
        let new = base + 0x2500;
        assert_eq!(call(&mut k, &mut t, &mut m, nr::BRK, &[new]).ret, new);
        assert!(m.is_mapped(base));
        assert!(m.is_mapped(new - 1));
        // Shrink back.
        assert_eq!(call(&mut k, &mut t, &mut m, nr::BRK, &[base]).ret, base);
        assert!(!m.is_mapped(base + 0x2000));
        assert_eq!(k.brk_history.len(), 3);
    }

    #[test]
    fn mmap_munmap_anonymous() {
        let (mut k, mut t, mut m) = setup();
        let a = call(
            &mut k,
            &mut t,
            &mut m,
            nr::MMAP,
            &[0, 0x3000, 3, 0x22, u64::MAX, 0],
        )
        .ret;
        assert!(!is_error(a));
        assert!(m.is_mapped(a));
        assert!(m.is_mapped(a + 0x2fff));
        let r = call(&mut k, &mut t, &mut m, nr::MUNMAP, &[a, 0x3000]).ret;
        assert_eq!(r, 0);
        assert!(!m.is_mapped(a));
    }

    #[test]
    fn clone_spawns_thread_with_new_stack() {
        let (mut k, mut t, mut m) = setup();
        t.regs.write(Reg::Rbx, 77);
        let out = call(&mut k, &mut t, &mut m, nr::CLONE, &[0, 0x2800]);
        match out.control {
            Control::Spawn(regs) => {
                assert_eq!(regs.rsp(), 0x2800);
                assert_eq!(regs.read(Reg::Rax), 0, "child sees 0");
                assert_eq!(regs.read(Reg::Rbx), 77, "other registers inherited");
            }
            other => panic!("expected spawn, got {other:?}"),
        }
    }

    #[test]
    fn dup2_installs_descriptor() {
        let (mut k, mut t, mut m) = setup();
        k.fs.put("/f", b"x".to_vec());
        m.write_bytes(0x1000, b"/f\0").unwrap();
        let fd = call(&mut k, &mut t, &mut m, nr::OPEN, &[0x1000, 0, 0]).ret;
        let r = call(&mut k, &mut t, &mut m, nr::DUP2, &[fd, 9]).ret;
        assert_eq!(r, 9);
        assert!(matches!(k.fd(9), Some(FileDesc { kind: FdKind::File(p), .. }) if p == "/f"));
    }

    #[test]
    fn gettimeofday_writes_timeval_and_records_side_effect() {
        let (mut k, mut t, mut m) = setup();
        t.regs.write(Reg::Rax, nr::GETTIMEOFDAY);
        t.regs.write(Reg::Rdi, 0x1000);
        t.regs.write(Reg::Rsi, 0);
        let out = k.handle(&mut t, &mut m, 5_000_000_000);
        assert_eq!(out.ret, 0);
        assert_eq!(out.writes.len(), 1);
        let sec = m.read_u64(0x1000).unwrap();
        assert_eq!(
            sec,
            (KernelConfig::default().epoch_ns + 5_000_000_000) / 1_000_000_000
        );
    }

    #[test]
    fn prctl_sets_brk_layout() {
        let (mut k, mut t, mut m) = setup();
        let r = call(
            &mut k,
            &mut t,
            &mut m,
            nr::PRCTL,
            &[PR_SET_MM, PR_SET_MM_START_BRK, 0x900_0000],
        );
        assert_eq!(r.ret, 0);
        let r2 = call(
            &mut k,
            &mut t,
            &mut m,
            nr::PRCTL,
            &[PR_SET_MM, PR_SET_MM_BRK, 0x900_3000],
        );
        assert_eq!(r2.ret, 0);
        assert_eq!(k.brk(), 0x900_3000);
        assert!(m.is_mapped(0x900_1000));
    }

    #[test]
    fn futex_wait_only_when_value_matches() {
        let (mut k, mut t, mut m) = setup();
        m.write_u32(0x2000, 5).unwrap();
        let out = call(&mut k, &mut t, &mut m, nr::FUTEX, &[0x2000, FUTEX_WAIT, 5]);
        assert_eq!(out.control, Control::FutexWait(0x2000));
        let out2 = call(&mut k, &mut t, &mut m, nr::FUTEX, &[0x2000, FUTEX_WAIT, 6]);
        assert_eq!(out2.ret, neg_errno(errno::EAGAIN));
        let out3 = call(&mut k, &mut t, &mut m, nr::FUTEX, &[0x2000, FUTEX_WAKE, 2]);
        assert_eq!(
            out3.control,
            Control::FutexWake {
                addr: 0x2000,
                count: 2
            }
        );
    }

    #[test]
    fn unknown_syscall_is_enosys() {
        let (mut k, mut t, mut m) = setup();
        let r = call(&mut k, &mut t, &mut m, 9999, &[]);
        assert_eq!(r.ret, neg_errno(errno::ENOSYS));
    }

    #[test]
    fn perf_syscalls() {
        let (mut k, mut t, mut m) = setup();
        t.icount = 123;
        t.cycles = 456;
        assert_eq!(
            call(&mut k, &mut t, &mut m, nr::PERF_READ_ICOUNT, &[]).ret,
            123
        );
        assert_eq!(
            call(&mut k, &mut t, &mut m, nr::PERF_READ_CYCLES, &[]).ret,
            456
        );
        let out = call(&mut k, &mut t, &mut m, nr::PERF_ARM_EXIT, &[1000]);
        assert_eq!(out.control, Control::ArmExitCounter(1000));
    }
}
