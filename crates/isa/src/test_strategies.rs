//! Shared proptest strategies over the instruction set, used by the
//! decoder's and the encoder's property tests and (behind the
//! `test-strategies` feature) by downstream differential tests such as
//! the VM's cached-vs-uncached execution comparison. Generated values are
//! *canonical*: a scale is only non-trivial when an index register is
//! present, mirroring what the encoding can represent.

use crate::insn::{AluOp, Cond, FpOp, Insn, MarkerKind, Mem, Scale, Seg};
use crate::reg::{Reg, Xmm};
use proptest::prelude::*;

/// Any general-purpose register.
pub fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

/// Any XMM register.
pub fn arb_xmm() -> impl Strategy<Value = Xmm> {
    (0u8..16).prop_map(Xmm)
}

/// A canonical memory operand (scale only with an index register).
pub fn arb_mem() -> impl Strategy<Value = Mem> {
    (
        proptest::option::of(arb_reg()),
        proptest::option::of(arb_reg()),
        0u8..4,
        any::<i32>(),
        0u8..3,
    )
        .prop_map(|(base, index, scale, disp, seg)| Mem {
            base,
            index,
            // Scale is only encoded together with an index register.
            scale: if index.is_some() {
                Scale::from_log2(scale).unwrap()
            } else {
                Scale::S1
            },
            disp,
            seg: match seg {
                1 => Some(Seg::Fs),
                2 => Some(Seg::Gs),
                _ => None,
            },
        })
}

/// Any instruction of the ISA, including control flow and faulting ones.
pub fn arb_insn() -> impl Strategy<Value = Insn> {
    let alu = (0u8..11).prop_map(|i| AluOp::from_index(i).unwrap());
    let fp = (0u8..7).prop_map(|i| FpOp::from_index(i).unwrap());
    let cond = (0u8..12).prop_map(|i| Cond::from_index(i).unwrap());
    let marker = (0u8..3).prop_map(|i| MarkerKind::from_index(i).unwrap());
    prop_oneof![
        Just(Insn::Nop),
        Just(Insn::Ret),
        Just(Insn::Syscall),
        Just(Insn::Mfence),
        Just(Insn::RepMovs),
        Just(Insn::Pause),
        Just(Insn::Ud2),
        Just(Insn::Pushfq),
        Just(Insn::Popfq),
        Just(Insn::Rdtsc),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::MovRR(a, b)),
        (arb_reg(), any::<u64>()).prop_map(|(a, b)| Insn::MovRI(a, b)),
        (arb_reg(), arb_mem()).prop_map(|(a, b)| Insn::Load(a, b)),
        (arb_mem(), arb_reg()).prop_map(|(a, b)| Insn::Store(a, b)),
        (arb_reg(), arb_mem()).prop_map(|(a, b)| Insn::LoadB(a, b)),
        (arb_mem(), arb_reg()).prop_map(|(a, b)| Insn::StoreB(a, b)),
        (arb_reg(), arb_mem()).prop_map(|(a, b)| Insn::LoadW(a, b)),
        (arb_mem(), arb_reg()).prop_map(|(a, b)| Insn::StoreW(a, b)),
        (arb_reg(), arb_mem()).prop_map(|(a, b)| Insn::Lea(a, b)),
        arb_reg().prop_map(Insn::Push),
        arb_reg().prop_map(Insn::Pop),
        (arb_mem(), arb_reg()).prop_map(|(a, b)| Insn::Xchg(a, b)),
        (alu.clone(), arb_reg(), arb_reg()).prop_map(|(o, a, b)| Insn::AluRR(o, a, b)),
        (alu, arb_reg(), any::<i32>()).prop_map(|(o, a, b)| Insn::AluRI(o, a, b)),
        arb_reg().prop_map(Insn::Neg),
        arb_reg().prop_map(Insn::Not),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::CmpRR(a, b)),
        (arb_reg(), any::<i32>()).prop_map(|(a, b)| Insn::CmpRI(a, b)),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Insn::TestRR(a, b)),
        any::<i32>().prop_map(Insn::Jmp),
        arb_reg().prop_map(Insn::JmpR),
        arb_mem().prop_map(Insn::JmpM),
        (cond, any::<i32>()).prop_map(|(c, r)| Insn::Jcc(c, r)),
        any::<i32>().prop_map(Insn::Call),
        arb_reg().prop_map(Insn::CallR),
        (arb_mem(), arb_reg()).prop_map(|(a, b)| Insn::LockXadd(a, b)),
        (arb_mem(), arb_reg()).prop_map(|(a, b)| Insn::LockCmpXchg(a, b)),
        (marker, any::<u32>()).prop_map(|(k, t)| Insn::Marker(k, t)),
        arb_reg().prop_map(Insn::RdFsBase),
        arb_reg().prop_map(Insn::WrFsBase),
        arb_reg().prop_map(Insn::RdGsBase),
        arb_reg().prop_map(Insn::WrGsBase),
        arb_mem().prop_map(Insn::Fxsave),
        arb_mem().prop_map(Insn::Fxrstor),
        arb_mem().prop_map(Insn::Xsave),
        arb_mem().prop_map(Insn::Xrstor),
        (arb_xmm(), arb_mem()).prop_map(|(x, m)| Insn::MovsdXM(x, m)),
        (arb_mem(), arb_xmm()).prop_map(|(m, x)| Insn::MovsdMX(m, x)),
        (arb_xmm(), arb_xmm()).prop_map(|(a, b)| Insn::MovsdXX(a, b)),
        (fp, arb_xmm(), arb_xmm()).prop_map(|(o, a, b)| Insn::FpRR(o, a, b)),
        (arb_xmm(), arb_reg()).prop_map(|(x, r)| Insn::Cvtsi2sd(x, r)),
        (arb_reg(), arb_xmm()).prop_map(|(r, x)| Insn::Cvttsd2si(r, x)),
        (arb_xmm(), arb_xmm()).prop_map(|(a, b)| Insn::Comisd(a, b)),
        (arb_reg(), arb_xmm()).prop_map(|(r, x)| Insn::MovqRX(r, x)),
        (arb_xmm(), arb_reg()).prop_map(|(x, r)| Insn::MovqXR(x, r)),
    ]
}
