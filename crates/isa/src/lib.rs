//! # elfie-isa
//!
//! Instruction-set architecture used throughout the ELFies reproduction.
//!
//! This crate defines a 64-bit, x86-flavoured guest ISA:
//!
//! * sixteen 64-bit general purpose registers named after their x86-64
//!   counterparts ([`Reg::Rax`] .. [`Reg::R15`]),
//! * a flags register with `ZF`/`SF`/`CF`/`OF`,
//! * `FS`/`GS` segment bases for thread-local addressing,
//! * sixteen 128-bit XMM registers held in an XSAVE-style save area
//!   ([`XSaveArea`]) that is restored with `FXRSTOR`/`XRSTOR` instructions,
//! * a variable-length binary encoding ([`fn@encode`]/[`fn@decode`]),
//! * a textual assembler ([`asm::Assembler`]) and disassembler
//!   ([`disasm::disassemble`]).
//!
//! The ISA intentionally mirrors the pieces of x86-64 that the ELFie
//! tool-chain manipulates: thread register contexts (GPRs + flags + segment
//! bases + extended state), variable-length instructions so that executing
//! an unmapped/garbage page faults realistically, atomic read-modify-write
//! instructions for spin locks, a `SYSCALL` instruction with the Linux
//! x86-64 argument convention, and the marker instructions
//! (`CPUID`-style, SSC and Simics-magic) that simulators use to detect the
//! start of the region of interest inside an ELFie.
//!
//! ## Example
//!
//! ```
//! use elfie_isa::Assembler;
//!
//! let prog = Assembler::new()
//!     .source(
//!         r#"
//!         .org 0x400000
//!         start:
//!             mov rax, 60        ; exit
//!             mov rdi, 0
//!             syscall
//!         "#,
//!     )
//!     .assemble()
//!     .expect("assembles");
//! assert_eq!(prog.origin, 0x400000);
//! assert!(!prog.is_empty());
//! ```

pub mod asm;
pub mod decode;
pub mod disasm;
pub mod encode;
pub mod hash;
pub mod insn;
pub mod reg;
#[cfg(any(test, feature = "test-strategies"))]
pub mod test_strategies;

pub use asm::{assemble, AsmError, Assembler, Chunk, Program};
pub use decode::{decode, DecodeError};
pub use disasm::{disassemble, format_insn, listing, DisasmLine};
pub use encode::{encode, encoded_len};
pub use hash::{fnv64, Fnv64};
pub use insn::{AluOp, Cond, FpOp, Insn, MarkerKind, Mem, Scale, Seg};
pub use reg::{Flags, Reg, RegFile, XSaveArea, Xmm, XSAVE_AREA_SIZE};

/// Size in bytes of one guest page. Matches the 4 KiB pages that pinballs
/// and ELF program headers operate on.
pub const PAGE_SIZE: u64 = 4096;

/// Mask selecting the page-offset bits of a virtual address.
pub const PAGE_MASK: u64 = PAGE_SIZE - 1;

/// Rounds `addr` down to the containing page base.
///
/// ```
/// assert_eq!(elfie_isa::page_base(0x4011ff), 0x401000);
/// ```
#[inline]
pub const fn page_base(addr: u64) -> u64 {
    addr & !PAGE_MASK
}

/// Rounds `addr` up to the next page boundary (identity on boundaries).
///
/// ```
/// assert_eq!(elfie_isa::page_align_up(0x401001), 0x402000);
/// assert_eq!(elfie_isa::page_align_up(0x401000), 0x401000);
/// ```
#[inline]
pub const fn page_align_up(addr: u64) -> u64 {
    (addr + PAGE_MASK) & !PAGE_MASK
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_helpers_are_consistent() {
        for a in [0u64, 1, 4095, 4096, 4097, 0xdead_beef] {
            assert!(page_base(a) <= a);
            assert!(page_align_up(a) >= a);
            assert_eq!(page_base(a) % PAGE_SIZE, 0);
            assert_eq!(page_align_up(a) % PAGE_SIZE, 0);
        }
    }
}
