//! Binary instruction decoder: the exact inverse of [`fn@crate::encode`].

use crate::encode::op;
use crate::insn::{AluOp, Cond, FpOp, Insn, MarkerKind, Mem, Scale, Seg};
use crate::reg::{Reg, Xmm};
use std::fmt;

/// An error produced while decoding an instruction stream.
///
/// Decode failures are how the guest machine models "executing garbage":
/// when an ELFie diverges onto a page that was never captured, the bytes
/// there decode to [`DecodeError::BadOpcode`] (or run off the mapping) and
/// the run ends ungracefully, exactly as Section II-C of the paper
/// describes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The primary opcode byte is not assigned.
    BadOpcode(u8),
    /// An operand byte is out of range (register index, condition code,
    /// scale, segment or marker kind).
    BadOperand(u8),
    /// The byte stream ended in the middle of an instruction.
    Truncated,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::BadOpcode(b) => write!(f, "invalid opcode byte {b:#04x}"),
            DecodeError::BadOperand(b) => write!(f, "invalid operand byte {b:#04x}"),
            DecodeError::Truncated => write!(f, "instruction stream truncated"),
        }
    }
}

impl std::error::Error for DecodeError {}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn u8(&mut self) -> Result<u8, DecodeError> {
        let b = *self.bytes.get(self.pos).ok_or(DecodeError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn reg(&mut self) -> Result<Reg, DecodeError> {
        let b = self.u8()?;
        Reg::from_index(b).ok_or(DecodeError::BadOperand(b))
    }

    fn xmm(&mut self) -> Result<Xmm, DecodeError> {
        let b = self.u8()?;
        Xmm::from_index(b).ok_or(DecodeError::BadOperand(b))
    }

    fn i32(&mut self) -> Result<i32, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 4;
        Ok(i32::from_le_bytes(s.try_into().expect("4 bytes")))
    }

    fn u32(&mut self) -> Result<u32, DecodeError> {
        Ok(self.i32()? as u32)
    }

    fn u64(&mut self) -> Result<u64, DecodeError> {
        let s = self
            .bytes
            .get(self.pos..self.pos + 8)
            .ok_or(DecodeError::Truncated)?;
        self.pos += 8;
        Ok(u64::from_le_bytes(s.try_into().expect("8 bytes")))
    }

    fn mem(&mut self) -> Result<Mem, DecodeError> {
        let b0 = self.u8()?;
        let b1 = self.u8()?;
        let b2 = self.u8()?;
        let base = if b0 & 0x80 != 0 {
            Some(Reg::from_index(b0 & 0x0f).ok_or(DecodeError::BadOperand(b0))?)
        } else if b0 != 0 {
            return Err(DecodeError::BadOperand(b0));
        } else {
            None
        };
        let (index, scale) = if b1 & 0x80 != 0 {
            let r = Reg::from_index(b1 & 0x0f).ok_or(DecodeError::BadOperand(b1))?;
            let s = Scale::from_log2((b1 >> 4) & 0x3).ok_or(DecodeError::BadOperand(b1))?;
            (Some(r), s)
        } else if b1 != 0 {
            return Err(DecodeError::BadOperand(b1));
        } else {
            (None, Scale::S1)
        };
        let seg = match b2 {
            0 => None,
            1 => Some(Seg::Fs),
            2 => Some(Seg::Gs),
            _ => return Err(DecodeError::BadOperand(b2)),
        };
        let disp = self.i32()?;
        Ok(Mem {
            base,
            index,
            scale,
            disp,
            seg,
        })
    }
}

/// Decodes one instruction from the front of `bytes`.
///
/// On success returns the instruction and its encoded length, so callers
/// can advance the instruction pointer.
///
/// # Errors
///
/// Returns [`DecodeError`] when the bytes do not form a valid instruction.
///
/// ```
/// use elfie_isa::{decode, encode, Insn, Reg};
/// let bytes = encode(&Insn::Push(Reg::Rbp));
/// let (insn, len) = decode(&bytes)?;
/// assert_eq!(insn, Insn::Push(Reg::Rbp));
/// assert_eq!(len, bytes.len());
/// # Ok::<(), elfie_isa::DecodeError>(())
/// ```
pub fn decode(bytes: &[u8]) -> Result<(Insn, usize), DecodeError> {
    let mut c = Cursor { bytes, pos: 0 };
    let opcode = c.u8()?;
    let insn = match opcode {
        op::NOP => Insn::Nop,
        op::MOV_RR => Insn::MovRR(c.reg()?, c.reg()?),
        op::MOV_RI => Insn::MovRI(c.reg()?, c.u64()?),
        op::LOAD => Insn::Load(c.reg()?, c.mem()?),
        op::STORE => {
            let r = c.reg()?;
            Insn::Store(c.mem()?, r)
        }
        op::LOAD_B => Insn::LoadB(c.reg()?, c.mem()?),
        op::STORE_B => {
            let r = c.reg()?;
            Insn::StoreB(c.mem()?, r)
        }
        op::LOAD_W => Insn::LoadW(c.reg()?, c.mem()?),
        op::STORE_W => {
            let r = c.reg()?;
            Insn::StoreW(c.mem()?, r)
        }
        op::LEA => Insn::Lea(c.reg()?, c.mem()?),
        op::PUSH => Insn::Push(c.reg()?),
        op::POP => Insn::Pop(c.reg()?),
        op::PUSHFQ => Insn::Pushfq,
        op::POPFQ => Insn::Popfq,
        op::XCHG => {
            let r = c.reg()?;
            Insn::Xchg(c.mem()?, r)
        }
        op::ALU_RR => {
            let o = c.u8()?;
            let o = AluOp::from_index(o).ok_or(DecodeError::BadOperand(o))?;
            Insn::AluRR(o, c.reg()?, c.reg()?)
        }
        op::ALU_RI => {
            let o = c.u8()?;
            let o = AluOp::from_index(o).ok_or(DecodeError::BadOperand(o))?;
            Insn::AluRI(o, c.reg()?, c.i32()?)
        }
        op::NEG => Insn::Neg(c.reg()?),
        op::NOT => Insn::Not(c.reg()?),
        op::CMP_RR => Insn::CmpRR(c.reg()?, c.reg()?),
        op::CMP_RI => Insn::CmpRI(c.reg()?, c.i32()?),
        op::TEST_RR => Insn::TestRR(c.reg()?, c.reg()?),
        op::JMP => Insn::Jmp(c.i32()?),
        op::JMP_R => Insn::JmpR(c.reg()?),
        op::JMP_M => Insn::JmpM(c.mem()?),
        op::JCC => {
            let cc = c.u8()?;
            let cc = Cond::from_index(cc).ok_or(DecodeError::BadOperand(cc))?;
            Insn::Jcc(cc, c.i32()?)
        }
        op::CALL => Insn::Call(c.i32()?),
        op::CALL_R => Insn::CallR(c.reg()?),
        op::RET => Insn::Ret,
        op::LOCK_XADD => {
            let r = c.reg()?;
            Insn::LockXadd(c.mem()?, r)
        }
        op::LOCK_CMPXCHG => {
            let r = c.reg()?;
            Insn::LockCmpXchg(c.mem()?, r)
        }
        op::REP_MOVS => Insn::RepMovs,
        op::MFENCE => Insn::Mfence,
        op::PAUSE => Insn::Pause,
        op::SYSCALL => Insn::Syscall,
        op::RDTSC => Insn::Rdtsc,
        op::UD2 => Insn::Ud2,
        op::MARKER => {
            let k = c.u8()?;
            let k = MarkerKind::from_index(k).ok_or(DecodeError::BadOperand(k))?;
            Insn::Marker(k, c.u32()?)
        }
        op::RD_FS_BASE => Insn::RdFsBase(c.reg()?),
        op::WR_FS_BASE => Insn::WrFsBase(c.reg()?),
        op::RD_GS_BASE => Insn::RdGsBase(c.reg()?),
        op::WR_GS_BASE => Insn::WrGsBase(c.reg()?),
        op::FXSAVE => Insn::Fxsave(c.mem()?),
        op::FXRSTOR => Insn::Fxrstor(c.mem()?),
        op::XSAVE => Insn::Xsave(c.mem()?),
        op::XRSTOR => Insn::Xrstor(c.mem()?),
        op::MOVSD_XM => Insn::MovsdXM(c.xmm()?, c.mem()?),
        op::MOVSD_MX => {
            let x = c.xmm()?;
            Insn::MovsdMX(c.mem()?, x)
        }
        op::MOVSD_XX => Insn::MovsdXX(c.xmm()?, c.xmm()?),
        op::FP_RR => {
            let o = c.u8()?;
            let o = FpOp::from_index(o).ok_or(DecodeError::BadOperand(o))?;
            Insn::FpRR(o, c.xmm()?, c.xmm()?)
        }
        op::CVTSI2SD => Insn::Cvtsi2sd(c.xmm()?, c.reg()?),
        op::CVTTSD2SI => Insn::Cvttsd2si(c.reg()?, c.xmm()?),
        op::COMISD => Insn::Comisd(c.xmm()?, c.xmm()?),
        op::MOVQ_RX => Insn::MovqRX(c.reg()?, c.xmm()?),
        op::MOVQ_XR => Insn::MovqXR(c.xmm()?, c.reg()?),
        other => return Err(DecodeError::BadOpcode(other)),
    };
    Ok((insn, c.pos))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;
    use crate::test_strategies::arb_insn;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn encode_decode_roundtrip(insn in arb_insn()) {
            let bytes = encode(&insn);
            let (decoded, len) = decode(&bytes).expect("decodes");
            prop_assert_eq!(decoded, insn);
            prop_assert_eq!(len, bytes.len());
        }

        #[test]
        fn decode_never_panics_on_garbage(bytes in proptest::collection::vec(any::<u8>(), 0..32)) {
            let _ = decode(&bytes);
        }

        #[test]
        fn truncation_is_detected(insn in arb_insn()) {
            let bytes = encode(&insn);
            for cut in 0..bytes.len() {
                // A strict prefix must either fail or decode to a shorter
                // instruction (never read past the cut).
                if let Ok((_, len)) = decode(&bytes[..cut]) {
                    prop_assert!(len <= cut);
                }
            }
        }
    }

    #[test]
    fn bad_opcode_reported() {
        assert_eq!(decode(&[0xff]), Err(DecodeError::BadOpcode(0xff)));
        assert_eq!(decode(&[]), Err(DecodeError::Truncated));
    }

    #[test]
    fn bad_register_operand_reported() {
        assert_eq!(
            decode(&[super::op::PUSH, 99]),
            Err(DecodeError::BadOperand(99))
        );
    }

    #[test]
    fn bad_condition_reported() {
        assert_eq!(
            decode(&[super::op::JCC, 42, 0, 0, 0, 0]),
            Err(DecodeError::BadOperand(42))
        );
    }
}
