//! Decoded instruction representation.

use crate::reg::{Reg, Xmm};
use std::fmt;

/// Segment override for memory operands (thread-local addressing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Seg {
    /// `FS`-relative (used for TLS, as on Linux x86-64).
    Fs,
    /// `GS`-relative.
    Gs,
}

/// Index-register scale factor of a memory operand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Scale {
    #[default]
    S1,
    S2,
    S4,
    S8,
}

impl Scale {
    /// Multiplier value (1, 2, 4 or 8).
    pub const fn value(self) -> u64 {
        match self {
            Scale::S1 => 1,
            Scale::S2 => 2,
            Scale::S4 => 4,
            Scale::S8 => 8,
        }
    }

    /// log2 of the multiplier, used by the binary encoding.
    pub const fn log2(self) -> u8 {
        match self {
            Scale::S1 => 0,
            Scale::S2 => 1,
            Scale::S4 => 2,
            Scale::S8 => 3,
        }
    }

    /// Inverse of [`Scale::log2`].
    pub const fn from_log2(v: u8) -> Option<Scale> {
        match v {
            0 => Some(Scale::S1),
            1 => Some(Scale::S2),
            2 => Some(Scale::S4),
            3 => Some(Scale::S8),
            _ => None,
        }
    }
}

/// An x86-style memory operand: `seg:[base + index*scale + disp]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Mem {
    /// Base register, if any.
    pub base: Option<Reg>,
    /// Index register, if any.
    pub index: Option<Reg>,
    /// Scale applied to the index register.
    pub scale: Scale,
    /// Signed 32-bit displacement.
    pub disp: i32,
    /// Optional segment override; the segment base is added to the address.
    pub seg: Option<Seg>,
}

impl Mem {
    /// Absolute-address operand `[disp]`.
    ///
    /// # Panics
    /// Panics if `addr` does not fit in an `i32` displacement; use a base
    /// register for high addresses.
    pub fn abs(addr: i64) -> Mem {
        Mem {
            disp: i32::try_from(addr).expect("absolute address fits in disp32"),
            ..Mem::default()
        }
    }

    /// Base-register operand `[base]`.
    pub fn base(base: Reg) -> Mem {
        Mem {
            base: Some(base),
            ..Mem::default()
        }
    }

    /// Base + displacement operand `[base + disp]`.
    pub fn base_disp(base: Reg, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            disp,
            ..Mem::default()
        }
    }

    /// Full scaled-index form `[base + index*scale + disp]`.
    pub fn base_index(base: Reg, index: Reg, scale: Scale, disp: i32) -> Mem {
        Mem {
            base: Some(base),
            index: Some(index),
            scale,
            disp,
            seg: None,
        }
    }

    /// Adds a segment override.
    pub fn with_seg(mut self, seg: Seg) -> Mem {
        self.seg = Some(seg);
        self
    }
}

impl fmt::Display for Mem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.seg {
            Some(Seg::Fs) => write!(f, "fs:")?,
            Some(Seg::Gs) => write!(f, "gs:")?,
            None => {}
        }
        write!(f, "[")?;
        let mut wrote = false;
        if let Some(b) = self.base {
            write!(f, "{b}")?;
            wrote = true;
        }
        if let Some(i) = self.index {
            if wrote {
                write!(f, " + ")?;
            }
            write!(f, "{i}*{}", self.scale.value())?;
            wrote = true;
        }
        if self.disp != 0 || !wrote {
            if wrote {
                if self.disp >= 0 {
                    write!(f, " + {:#x}", self.disp)?;
                } else {
                    write!(f, " - {:#x}", -(self.disp as i64))?;
                }
            } else {
                write!(f, "{:#x}", self.disp)?;
            }
        }
        write!(f, "]")
    }
}

/// Branch condition codes (x86 naming).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal (`ZF`).
    E = 0,
    /// Not equal (`!ZF`).
    Ne = 1,
    /// Signed less (`SF != OF`).
    L = 2,
    /// Signed less-or-equal.
    Le = 3,
    /// Signed greater.
    G = 4,
    /// Signed greater-or-equal.
    Ge = 5,
    /// Unsigned below (`CF`).
    B = 6,
    /// Unsigned below-or-equal.
    Be = 7,
    /// Unsigned above.
    A = 8,
    /// Unsigned above-or-equal.
    Ae = 9,
    /// Sign set.
    S = 10,
    /// Sign clear.
    Ns = 11,
}

impl Cond {
    /// All condition codes in encoding order.
    pub const ALL: [Cond; 12] = [
        Cond::E,
        Cond::Ne,
        Cond::L,
        Cond::Le,
        Cond::G,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
        Cond::S,
        Cond::Ns,
    ];

    /// Decodes the encoding byte.
    pub const fn from_index(v: u8) -> Option<Cond> {
        if (v as usize) < Cond::ALL.len() {
            Some(Cond::ALL[v as usize])
        } else {
            None
        }
    }

    /// The mnemonic suffix (`"e"`, `"ne"`, ...).
    pub const fn suffix(self) -> &'static str {
        match self {
            Cond::E => "e",
            Cond::Ne => "ne",
            Cond::L => "l",
            Cond::Le => "le",
            Cond::G => "g",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
            Cond::S => "s",
            Cond::Ns => "ns",
        }
    }
}

/// Integer ALU operations with register-register and register-immediate
/// forms.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum AluOp {
    Add = 0,
    Sub = 1,
    And = 2,
    Or = 3,
    Xor = 4,
    Shl = 5,
    Shr = 6,
    Sar = 7,
    /// Signed multiply, low 64 bits.
    Imul = 8,
    /// Unsigned divide (quotient).
    Udiv = 9,
    /// Unsigned remainder.
    Urem = 10,
}

impl AluOp {
    /// All ALU operations in encoding order.
    pub const ALL: [AluOp; 11] = [
        AluOp::Add,
        AluOp::Sub,
        AluOp::And,
        AluOp::Or,
        AluOp::Xor,
        AluOp::Shl,
        AluOp::Shr,
        AluOp::Sar,
        AluOp::Imul,
        AluOp::Udiv,
        AluOp::Urem,
    ];

    /// Decodes the encoding byte.
    pub const fn from_index(v: u8) -> Option<AluOp> {
        if (v as usize) < AluOp::ALL.len() {
            Some(AluOp::ALL[v as usize])
        } else {
            None
        }
    }

    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Sar => "sar",
            AluOp::Imul => "imul",
            AluOp::Udiv => "udiv",
            AluOp::Urem => "urem",
        }
    }
}

/// Scalar-double floating point operations (`xmm, xmm` form).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FpOp {
    Add = 0,
    Sub = 1,
    Mul = 2,
    Div = 3,
    Min = 4,
    Max = 5,
    /// `dst = sqrt(src)` (unary; the destination is overwritten).
    Sqrt = 6,
}

impl FpOp {
    /// All FP operations in encoding order.
    pub const ALL: [FpOp; 7] = [
        FpOp::Add,
        FpOp::Sub,
        FpOp::Mul,
        FpOp::Div,
        FpOp::Min,
        FpOp::Max,
        FpOp::Sqrt,
    ];

    /// Decodes the encoding byte.
    pub const fn from_index(v: u8) -> Option<FpOp> {
        if (v as usize) < FpOp::ALL.len() {
            Some(FpOp::ALL[v as usize])
        } else {
            None
        }
    }

    /// The assembler mnemonic.
    pub const fn mnemonic(self) -> &'static str {
        match self {
            FpOp::Add => "addsd",
            FpOp::Sub => "subsd",
            FpOp::Mul => "mulsd",
            FpOp::Div => "divsd",
            FpOp::Min => "minsd",
            FpOp::Max => "maxsd",
            FpOp::Sqrt => "sqrtsd",
        }
    }
}

/// Region-of-interest marker styles inserted by `pinball2elf --roi-start`.
///
/// The paper supports `sniper`, `ssc` (Pintools) and `simics` marker
/// conventions; simulators scan for the style they understand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum MarkerKind {
    /// Sniper-style marker instruction.
    Sniper = 0,
    /// SSC marker (special long NOP with payload) recognised by Pintools.
    Ssc = 1,
    /// Simics magic instruction.
    Simics = 2,
}

impl MarkerKind {
    /// All marker kinds in encoding order.
    pub const ALL: [MarkerKind; 3] = [MarkerKind::Sniper, MarkerKind::Ssc, MarkerKind::Simics];

    /// Decodes the encoding byte.
    pub const fn from_index(v: u8) -> Option<MarkerKind> {
        if (v as usize) < MarkerKind::ALL.len() {
            Some(MarkerKind::ALL[v as usize])
        } else {
            None
        }
    }

    /// The name used on the `--roi-start TYPE:TAG` command line.
    pub const fn name(self) -> &'static str {
        match self {
            MarkerKind::Sniper => "sniper",
            MarkerKind::Ssc => "ssc",
            MarkerKind::Simics => "simics",
        }
    }

    /// Parses a `--roi-start` type name.
    pub fn parse(name: &str) -> Option<MarkerKind> {
        MarkerKind::ALL.iter().copied().find(|k| k.name() == name)
    }
}

/// A decoded instruction.
///
/// Control-flow targets are encoded as signed displacements relative to the
/// address of the *next* instruction (rel32), as on x86-64.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Insn {
    /// No operation.
    Nop,
    /// `mov dst, src` between registers.
    MovRR(Reg, Reg),
    /// `mov dst, imm64`.
    MovRI(Reg, u64),
    /// 64-bit load `mov dst, [mem]`.
    Load(Reg, Mem),
    /// 64-bit store `mov [mem], src`.
    Store(Mem, Reg),
    /// Zero-extending byte load.
    LoadB(Reg, Mem),
    /// Byte store (low 8 bits of `src`).
    StoreB(Mem, Reg),
    /// Zero-extending 32-bit load.
    LoadW(Reg, Mem),
    /// 32-bit store (low 32 bits of `src`).
    StoreW(Mem, Reg),
    /// Address computation `lea dst, [mem]`.
    Lea(Reg, Mem),
    /// Push a register onto the stack.
    Push(Reg),
    /// Pop from the stack into a register.
    Pop(Reg),
    /// Push the packed flags register.
    Pushfq,
    /// Pop the packed flags register.
    Popfq,
    /// Atomic exchange `xchg [mem], reg`.
    Xchg(Mem, Reg),
    /// Register-register ALU operation.
    AluRR(AluOp, Reg, Reg),
    /// Register-immediate ALU operation (imm sign-extended to 64 bits).
    AluRI(AluOp, Reg, i32),
    /// Two's complement negate.
    Neg(Reg),
    /// Bitwise not.
    Not(Reg),
    /// Compare registers (sets flags like `sub`).
    CmpRR(Reg, Reg),
    /// Compare register with immediate.
    CmpRI(Reg, i32),
    /// Bitwise-AND flags test.
    TestRR(Reg, Reg),
    /// Unconditional relative jump.
    Jmp(i32),
    /// Indirect jump through a register.
    JmpR(Reg),
    /// Memory-indirect jump: `jmp [mem]` loads the 64-bit target from
    /// memory. Used by ELFie thread entries to reach arbitrary 64-bit
    /// addresses without clobbering any register.
    JmpM(Mem),
    /// Conditional relative jump.
    Jcc(Cond, i32),
    /// Relative call (pushes return address).
    Call(i32),
    /// Indirect call through a register.
    CallR(Reg),
    /// Return (pops return address).
    Ret,
    /// Atomic fetch-and-add `lock xadd [mem], reg`.
    LockXadd(Mem, Reg),
    /// Atomic compare-exchange: compares `RAX` with `[mem]`; on equality
    /// stores `reg`, else loads `[mem]` into `RAX`. Sets `ZF`.
    LockCmpXchg(Mem, Reg),
    /// Bulk copy (x86 `rep movsq`): copies `RCX` quadwords from `[RSI]`
    /// to `[RDI]`, advancing all three registers. Retires as one
    /// instruction — the ELFie startup uses it to remap pinball pages
    /// cheaply, as real startup code uses `memcpy`.
    RepMovs,
    /// Full memory fence.
    Mfence,
    /// Spin-loop hint.
    Pause,
    /// System call (Linux x86-64 convention: nr in `RAX`, args in
    /// `RDI,RSI,RDX,R10,R8,R9`, result in `RAX`).
    Syscall,
    /// Read time-stamp counter into `RAX` (full 64 bits; `RDX` zeroed).
    Rdtsc,
    /// Guaranteed-invalid instruction (faults).
    Ud2,
    /// Region-of-interest marker with a 32-bit tag.
    Marker(MarkerKind, u32),
    /// Read the `FS` segment base into a register.
    RdFsBase(Reg),
    /// Write the `FS` segment base from a register.
    WrFsBase(Reg),
    /// Read the `GS` segment base into a register.
    RdGsBase(Reg),
    /// Write the `GS` segment base from a register.
    WrGsBase(Reg),
    /// Save legacy extended state (512-byte FXSAVE image) to memory.
    Fxsave(Mem),
    /// Restore legacy extended state from memory.
    Fxrstor(Mem),
    /// Save full extended state to memory (same image in this ISA).
    Xsave(Mem),
    /// Restore full extended state from memory.
    Xrstor(Mem),
    /// Scalar-double load `movsd xmm, [mem]`.
    MovsdXM(Xmm, Mem),
    /// Scalar-double store `movsd [mem], xmm`.
    MovsdMX(Mem, Xmm),
    /// Scalar-double register move.
    MovsdXX(Xmm, Xmm),
    /// Scalar-double arithmetic.
    FpRR(FpOp, Xmm, Xmm),
    /// Convert signed integer to double.
    Cvtsi2sd(Xmm, Reg),
    /// Convert double to signed integer (truncating).
    Cvttsd2si(Reg, Xmm),
    /// Compare doubles, setting `ZF`/`CF` like `ucomisd`.
    Comisd(Xmm, Xmm),
    /// Move the low 64 bits of an XMM register to a GPR.
    MovqRX(Reg, Xmm),
    /// Move a GPR into the low 64 bits of an XMM register.
    MovqXR(Xmm, Reg),
}

impl Insn {
    /// True if the instruction may redirect control flow (branches, calls,
    /// returns and indirect jumps). `SYSCALL` is not included: it returns to
    /// the next instruction.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Insn::Jmp(_)
                | Insn::JmpR(_)
                | Insn::JmpM(_)
                | Insn::Jcc(..)
                | Insn::Call(_)
                | Insn::CallR(_)
                | Insn::Ret
        )
    }

    /// True if the instruction terminates a basic block (control flow or
    /// `SYSCALL`/`UD2`). Used by basic-block-vector profiling.
    pub fn ends_basic_block(&self) -> bool {
        self.is_control_flow() || matches!(self, Insn::Syscall | Insn::Ud2)
    }

    /// True for memory-reading instructions (used by simulators and the
    /// PinPlay logger to attribute data accesses).
    pub fn reads_memory(&self) -> bool {
        matches!(
            self,
            Insn::Load(..)
                | Insn::LoadB(..)
                | Insn::LoadW(..)
                | Insn::JmpM(_)
                | Insn::Pop(_)
                | Insn::Popfq
                | Insn::Ret
                | Insn::Xchg(..)
                | Insn::RepMovs
                | Insn::LockXadd(..)
                | Insn::LockCmpXchg(..)
                | Insn::Fxrstor(_)
                | Insn::Xrstor(_)
                | Insn::MovsdXM(..)
        )
    }

    /// True for memory-writing instructions.
    pub fn writes_memory(&self) -> bool {
        matches!(
            self,
            Insn::Store(..)
                | Insn::StoreB(..)
                | Insn::StoreW(..)
                | Insn::Push(_)
                | Insn::Pushfq
                | Insn::Call(_)
                | Insn::CallR(_)
                | Insn::Xchg(..)
                | Insn::RepMovs
                | Insn::LockXadd(..)
                | Insn::LockCmpXchg(..)
                | Insn::Fxsave(_)
                | Insn::Xsave(_)
                | Insn::MovsdMX(..)
        )
    }

    /// True for atomic read-modify-write instructions.
    pub fn is_atomic(&self) -> bool {
        matches!(
            self,
            Insn::Xchg(..) | Insn::LockXadd(..) | Insn::LockCmpXchg(..)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_roundtrips() {
        for (i, c) in Cond::ALL.iter().enumerate() {
            assert_eq!(Cond::from_index(i as u8), Some(*c));
        }
        assert_eq!(Cond::from_index(12), None);
    }

    #[test]
    fn aluop_roundtrips() {
        for (i, op) in AluOp::ALL.iter().enumerate() {
            assert_eq!(AluOp::from_index(i as u8), Some(*op));
        }
        assert_eq!(AluOp::from_index(11), None);
    }

    #[test]
    fn marker_kind_parse() {
        assert_eq!(MarkerKind::parse("sniper"), Some(MarkerKind::Sniper));
        assert_eq!(MarkerKind::parse("ssc"), Some(MarkerKind::Ssc));
        assert_eq!(MarkerKind::parse("simics"), Some(MarkerKind::Simics));
        assert_eq!(MarkerKind::parse("gem5"), None);
    }

    #[test]
    fn mem_display_forms() {
        assert_eq!(Mem::base(Reg::Rax).to_string(), "[rax]");
        assert_eq!(Mem::base_disp(Reg::Rbp, -8).to_string(), "[rbp - 0x8]");
        assert_eq!(
            Mem::base_index(Reg::Rdi, Reg::Rcx, Scale::S8, 16).to_string(),
            "[rdi + rcx*8 + 0x10]"
        );
        assert_eq!(
            Mem::abs(0x1000).with_seg(Seg::Fs).to_string(),
            "fs:[0x1000]"
        );
    }

    #[test]
    fn classification_flags() {
        assert!(Insn::Jmp(0).is_control_flow());
        assert!(!Insn::Syscall.is_control_flow());
        assert!(Insn::Syscall.ends_basic_block());
        assert!(Insn::LockXadd(Mem::base(Reg::Rax), Reg::Rbx).is_atomic());
        assert!(Insn::LockXadd(Mem::base(Reg::Rax), Reg::Rbx).reads_memory());
        assert!(Insn::LockXadd(Mem::base(Reg::Rax), Reg::Rbx).writes_memory());
        assert!(Insn::Push(Reg::Rax).writes_memory());
        assert!(Insn::Pop(Reg::Rax).reads_memory());
        assert!(!Insn::Nop.reads_memory());
    }
}
