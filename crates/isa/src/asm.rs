//! A two-pass textual assembler for the guest ISA.
//!
//! The syntax is Intel-flavoured. One statement per line; comments start
//! with `;` or `#`.
//!
//! ```text
//! .org 0x400000          ; start a chunk at this virtual address
//! start:
//!     mov rax, counter   ; label used as a 64-bit immediate
//!     mov rbx, [rax]     ; 64-bit load
//!     add rbx, 1
//!     mov [rax], rbx     ; 64-bit store
//!     syscall
//! .align 8
//! counter:
//!     .quad 0
//! ```
//!
//! Supported directives: `.org ADDR`, `.entry LABEL`, `.align N`,
//! `.byte V[, V...]`, `.quad V[, V...]` (values may be labels),
//! `.zero N`, `.asciz "text"`.
//!
//! Instruction lengths never depend on label values (immediates and rel32
//! displacements are fixed-width), so two passes suffice: layout, then
//! resolve-and-encode.

use crate::encode::encode_into;
use crate::insn::{AluOp, Cond, FpOp, Insn, MarkerKind, Mem, Scale, Seg};
use crate::reg::{Reg, Xmm};
use std::collections::BTreeMap;
use std::fmt;

/// A contiguous run of assembled bytes placed at a fixed virtual address.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Chunk {
    /// Virtual address of the first byte.
    pub addr: u64,
    /// The assembled bytes.
    pub bytes: Vec<u8>,
}

impl Chunk {
    /// Exclusive end address of the chunk.
    pub fn end(&self) -> u64 {
        self.addr + self.bytes.len() as u64
    }
}

/// The output of a successful assembly.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Virtual address of the first chunk (the default load origin).
    pub origin: u64,
    /// Entry point: the `.entry` label, else the `start` or `_start`
    /// label, else `origin`.
    pub entry: u64,
    /// All assembled chunks, in source order.
    pub chunks: Vec<Chunk>,
    /// Every label with its resolved address.
    pub symbols: BTreeMap<String, u64>,
}

impl Program {
    /// The bytes of the first chunk. Convenience for single-chunk programs.
    pub fn bytes(&self) -> &[u8] {
        &self.chunks[0].bytes
    }

    /// Looks up a label address.
    pub fn symbol(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).copied()
    }

    /// Total number of assembled bytes across all chunks.
    pub fn len(&self) -> usize {
        self.chunks.iter().map(|c| c.bytes.len()).sum()
    }

    /// True when no bytes were assembled.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Stable hash over everything that affects execution: origin, entry,
    /// every chunk (address + bytes) and the symbol table. Two programs
    /// with equal hashes behave identically, which is what the pipeline
    /// cache keys on.
    pub fn content_hash(&self) -> u64 {
        let mut h = crate::hash::Fnv64::new().u64(self.origin).u64(self.entry);
        h = h.u64(self.chunks.len() as u64);
        for chunk in &self.chunks {
            h = h
                .u64(chunk.addr)
                .u64(chunk.bytes.len() as u64)
                .bytes(&chunk.bytes);
        }
        h = h.u64(self.symbols.len() as u64);
        for (name, &addr) in &self.symbols {
            h = h.str(name).u64(addr);
        }
        h.finish()
    }
}

/// An assembly error, with the 1-based source line it occurred on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Human-readable description of the problem.
    pub message: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// Builder-style assembler. Collect source with [`Assembler::source`], then
/// call [`Assembler::assemble`].
#[derive(Debug, Clone, Default)]
pub struct Assembler {
    text: String,
}

impl Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Assembler {
        Assembler::default()
    }

    /// Appends source text (chainable).
    pub fn source(mut self, text: &str) -> Assembler {
        self.text.push_str(text);
        self.text.push('\n');
        self
    }

    /// Runs both assembler passes.
    ///
    /// # Errors
    ///
    /// Returns the first [`AsmError`] encountered: syntax errors, unknown
    /// mnemonics, duplicate or undefined labels, out-of-range operands.
    pub fn assemble(&self) -> Result<Program, AsmError> {
        assemble(&self.text)
    }
}

/// One-shot helper: assembles `text` directly.
pub fn assemble(text: &str) -> Result<Program, AsmError> {
    Pass::run(text)
}

// ---------------------------------------------------------------------------
// Implementation
// ---------------------------------------------------------------------------

/// An operand value that may reference a label resolved in pass 2.
#[derive(Debug, Clone)]
enum Expr {
    Const(i64),
    Label(String, i64),
}

impl Expr {
    fn resolve(&self, line: usize, symbols: &BTreeMap<String, u64>) -> Result<i64, AsmError> {
        match self {
            Expr::Const(v) => Ok(*v),
            Expr::Label(name, off) => symbols
                .get(name)
                .map(|&a| a as i64 + off)
                .ok_or_else(|| err(line, format!("undefined label `{name}`"))),
        }
    }
}

/// An instruction whose label operands are not yet resolved.
#[derive(Debug, Clone)]
enum Item {
    /// Fully resolved instruction.
    Insn(Insn),
    /// `mov r, expr` where expr is a label (64-bit immediate).
    MovRI(Reg, Expr),
    /// Relative branch to a label: shape rebuilt in pass 2.
    Branch(BranchKind, Expr),
    /// Memory-operand instruction whose displacement references a label.
    WithMem(MemShape, MemTemplate),
    /// Raw data bytes.
    Data(Vec<u8>),
    /// `.quad` with label values.
    QuadExpr(Vec<Expr>),
    /// Alignment padding decided in pass 1 (stored as zero bytes).
    Pad(usize),
}

#[derive(Debug, Clone, Copy)]
enum BranchKind {
    Jmp,
    Jcc(Cond),
    Call,
}

/// Instruction shapes that carry a memory operand with a label displacement.
#[derive(Debug, Clone, Copy)]
enum MemShape {
    Load(Reg),
    Store(Reg),
    LoadB(Reg),
    StoreB(Reg),
    LoadW(Reg),
    StoreW(Reg),
    Lea(Reg),
    Xchg(Reg),
    LockXadd(Reg),
    LockCmpXchg(Reg),
    Fxsave,
    Fxrstor,
    Xsave,
    Xrstor,
    JmpM,
    MovsdXM(Xmm),
    MovsdMX(Xmm),
}

#[derive(Debug, Clone)]
struct MemTemplate {
    base: Option<Reg>,
    index: Option<Reg>,
    scale: Scale,
    disp: Expr,
    seg: Option<Seg>,
}

impl MemTemplate {
    fn resolve(&self, line: usize, symbols: &BTreeMap<String, u64>) -> Result<Mem, AsmError> {
        let disp = self.disp.resolve(line, symbols)?;
        let disp = i32::try_from(disp).map_err(|_| {
            err(
                line,
                format!("displacement {disp:#x} does not fit in 32 bits"),
            )
        })?;
        Ok(Mem {
            base: self.base,
            index: self.index,
            scale: self.scale,
            disp,
            seg: self.seg,
        })
    }
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn item_len(item: &Item) -> usize {
    match item {
        Item::Insn(i) => crate::encode::encoded_len(i),
        Item::MovRI(..) => 10,
        Item::Branch(BranchKind::Jmp, _) | Item::Branch(BranchKind::Call, _) => 5,
        Item::Branch(BranchKind::Jcc(_), _) => 6,
        Item::WithMem(shape, _) => match shape {
            MemShape::Fxsave
            | MemShape::Fxrstor
            | MemShape::Xsave
            | MemShape::Xrstor
            | MemShape::JmpM => 8,
            _ => 9,
        },
        Item::Data(d) => d.len(),
        Item::QuadExpr(v) => v.len() * 8,
        Item::Pad(n) => *n,
    }
}

struct Pass;

impl Pass {
    fn run(text: &str) -> Result<Program, AsmError> {
        // Pass 1: parse every line, tracking the current address to define
        // labels. `.org` starts a new chunk.
        let mut chunks: Vec<(u64, Vec<(usize, Item)>)> = Vec::new();
        let mut symbols: BTreeMap<String, u64> = BTreeMap::new();
        let mut entry_label: Option<(usize, String)> = None;
        let mut cur_addr: u64 = 0;
        let mut started = false;

        let push_item = |chunks: &mut Vec<(u64, Vec<(usize, Item)>)>,
                         cur_addr: &mut u64,
                         started: &mut bool,
                         line: usize,
                         item: Item| {
            if !*started {
                chunks.push((*cur_addr, Vec::new()));
                *started = true;
            }
            let len = item_len(&item) as u64;
            chunks
                .last_mut()
                .expect("chunk exists")
                .1
                .push((line, item));
            *cur_addr += len;
        };

        for (lineno, raw) in text.lines().enumerate() {
            let line = lineno + 1;
            let mut s = strip_comment(raw).trim();
            if s.is_empty() {
                continue;
            }
            // Labels (possibly several) at the start of the line.
            while let Some(colon) = find_label(s) {
                let name = s[..colon].trim();
                validate_label(line, name)?;
                if symbols.insert(name.to_string(), cur_addr).is_some() {
                    return Err(err(line, format!("duplicate label `{name}`")));
                }
                if !started {
                    // A label before any content still pins the chunk start.
                    chunks.push((cur_addr, Vec::new()));
                    started = true;
                }
                s = s[colon + 1..].trim();
            }
            if s.is_empty() {
                continue;
            }
            if let Some(rest) = s.strip_prefix('.') {
                let (dir, args) = split_first_word(rest);
                match dir {
                    "org" => {
                        let v = parse_int(line, args.trim())?;
                        cur_addr = v as u64;
                        chunks.push((cur_addr, Vec::new()));
                        started = true;
                    }
                    "entry" => {
                        entry_label = Some((line, args.trim().to_string()));
                    }
                    "align" => {
                        let n = parse_int(line, args.trim())? as u64;
                        if n == 0 || !n.is_power_of_two() {
                            return Err(err(line, ".align requires a power of two"));
                        }
                        let pad = (n - (cur_addr % n)) % n;
                        if pad > 0 {
                            push_item(
                                &mut chunks,
                                &mut cur_addr,
                                &mut started,
                                line,
                                Item::Pad(pad as usize),
                            );
                        }
                    }
                    "byte" => {
                        let mut data = Vec::new();
                        for part in split_args(args) {
                            let v = parse_int(line, part.trim())?;
                            let b = u8::try_from(v & 0xff).expect("masked");
                            data.push(b);
                        }
                        push_item(
                            &mut chunks,
                            &mut cur_addr,
                            &mut started,
                            line,
                            Item::Data(data),
                        );
                    }
                    "quad" => {
                        let mut exprs = Vec::new();
                        for part in split_args(args) {
                            exprs.push(parse_expr(line, part.trim())?);
                        }
                        push_item(
                            &mut chunks,
                            &mut cur_addr,
                            &mut started,
                            line,
                            Item::QuadExpr(exprs),
                        );
                    }
                    "zero" => {
                        let n = parse_int(line, args.trim())?;
                        if n < 0 {
                            return Err(err(line, ".zero requires a non-negative size"));
                        }
                        push_item(
                            &mut chunks,
                            &mut cur_addr,
                            &mut started,
                            line,
                            Item::Data(vec![0u8; n as usize]),
                        );
                    }
                    "asciz" => {
                        let text = parse_string(line, args.trim())?;
                        let mut data = text.into_bytes();
                        data.push(0);
                        push_item(
                            &mut chunks,
                            &mut cur_addr,
                            &mut started,
                            line,
                            Item::Data(data),
                        );
                    }
                    other => return Err(err(line, format!("unknown directive `.{other}`"))),
                }
                continue;
            }
            let item = parse_instruction(line, s)?;
            push_item(&mut chunks, &mut cur_addr, &mut started, line, item);
        }

        // Pass 2: resolve and encode.
        let mut out_chunks = Vec::with_capacity(chunks.len());
        for (addr, items) in &chunks {
            let mut bytes = Vec::new();
            let mut pc = *addr;
            for (line, item) in items {
                let len = item_len(item) as u64;
                let next_pc = pc + len;
                match item {
                    Item::Insn(i) => encode_into(i, &mut bytes),
                    Item::MovRI(r, e) => {
                        let v = e.resolve(*line, &symbols)?;
                        encode_into(&Insn::MovRI(*r, v as u64), &mut bytes);
                    }
                    Item::Branch(kind, e) => {
                        let target = e.resolve(*line, &symbols)?;
                        let rel = target - next_pc as i64;
                        let rel = i32::try_from(rel).map_err(|_| {
                            err(
                                *line,
                                format!("branch target out of rel32 range ({rel:#x})"),
                            )
                        })?;
                        let insn = match kind {
                            BranchKind::Jmp => Insn::Jmp(rel),
                            BranchKind::Jcc(c) => Insn::Jcc(*c, rel),
                            BranchKind::Call => Insn::Call(rel),
                        };
                        encode_into(&insn, &mut bytes);
                    }
                    Item::WithMem(shape, tmpl) => {
                        let m = tmpl.resolve(*line, &symbols)?;
                        let insn = match *shape {
                            MemShape::Load(r) => Insn::Load(r, m),
                            MemShape::Store(r) => Insn::Store(m, r),
                            MemShape::LoadB(r) => Insn::LoadB(r, m),
                            MemShape::StoreB(r) => Insn::StoreB(m, r),
                            MemShape::LoadW(r) => Insn::LoadW(r, m),
                            MemShape::StoreW(r) => Insn::StoreW(m, r),
                            MemShape::Lea(r) => Insn::Lea(r, m),
                            MemShape::Xchg(r) => Insn::Xchg(m, r),
                            MemShape::LockXadd(r) => Insn::LockXadd(m, r),
                            MemShape::LockCmpXchg(r) => Insn::LockCmpXchg(m, r),
                            MemShape::Fxsave => Insn::Fxsave(m),
                            MemShape::Fxrstor => Insn::Fxrstor(m),
                            MemShape::Xsave => Insn::Xsave(m),
                            MemShape::Xrstor => Insn::Xrstor(m),
                            MemShape::JmpM => Insn::JmpM(m),
                            MemShape::MovsdXM(x) => Insn::MovsdXM(x, m),
                            MemShape::MovsdMX(x) => Insn::MovsdMX(m, x),
                        };
                        encode_into(&insn, &mut bytes);
                    }
                    Item::Data(d) => bytes.extend_from_slice(d),
                    Item::QuadExpr(exprs) => {
                        for e in exprs {
                            let v = e.resolve(*line, &symbols)?;
                            bytes.extend_from_slice(&(v as u64).to_le_bytes());
                        }
                    }
                    Item::Pad(n) => bytes.extend(std::iter::repeat(0u8).take(*n)),
                }
                debug_assert_eq!(
                    bytes.len() as u64,
                    next_pc - *addr,
                    "layout matches encoding"
                );
                pc = next_pc;
            }
            out_chunks.push(Chunk { addr: *addr, bytes });
        }
        if out_chunks.is_empty() {
            return Err(err(0, "empty program"));
        }

        let origin = out_chunks[0].addr;
        let entry = match entry_label {
            Some((line, name)) => *symbols
                .get(&name)
                .ok_or_else(|| err(line, format!("undefined entry label `{name}`")))?,
            None => symbols
                .get("start")
                .or_else(|| symbols.get("_start"))
                .copied()
                .unwrap_or(origin),
        };
        Ok(Program {
            origin,
            entry,
            chunks: out_chunks,
            symbols,
        })
    }
}

fn strip_comment(line: &str) -> &str {
    // Respect string literals in .asciz.
    let mut in_str = false;
    for (i, ch) in line.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            ';' | '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

/// Finds a label-terminating colon at the start of the statement, ignoring
/// colons inside operands (e.g. `fs:[rax]`).
fn find_label(s: &str) -> Option<usize> {
    let colon = s.find(':')?;
    let head = &s[..colon];
    if !head.is_empty()
        && head
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.')
        && !head.chars().next().expect("non-empty").is_ascii_digit()
        && Reg::parse(head).is_none()
        && head != "fs"
        && head != "gs"
    {
        Some(colon)
    } else {
        None
    }
}

fn validate_label(line: usize, name: &str) -> Result<(), AsmError> {
    if name.is_empty() {
        return Err(err(line, "empty label name"));
    }
    Ok(())
}

fn split_first_word(s: &str) -> (&str, &str) {
    let s = s.trim_start();
    match s.find(char::is_whitespace) {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    }
}

/// Splits a comma-separated operand list, respecting brackets.
fn split_args(s: &str) -> Vec<&str> {
    let mut parts = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    let mut in_str = false;
    for (i, ch) in s.char_indices() {
        match ch {
            '"' => in_str = !in_str,
            '[' if !in_str => depth += 1,
            ']' if !in_str => depth = depth.saturating_sub(1),
            ',' if depth == 0 && !in_str => {
                parts.push(&s[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    let tail = &s[start..];
    if !tail.trim().is_empty() || !parts.is_empty() {
        parts.push(tail);
    }
    parts.retain(|p| !p.trim().is_empty());
    parts
}

fn parse_int(line: usize, s: &str) -> Result<i64, AsmError> {
    let s = s.trim();
    let (neg, body) = match s.strip_prefix('-') {
        Some(rest) => (true, rest.trim()),
        None => (false, s),
    };
    let v = if let Some(hex) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        u64::from_str_radix(&hex.replace('_', ""), 16)
            .map_err(|_| err(line, format!("invalid integer `{s}`")))?
    } else {
        body.replace('_', "")
            .parse::<u64>()
            .map_err(|_| err(line, format!("invalid integer `{s}`")))?
    };
    let v = v as i64;
    Ok(if neg { -v } else { v })
}

fn parse_expr(line: usize, s: &str) -> Result<Expr, AsmError> {
    let s = s.trim();
    if s.is_empty() {
        return Err(err(line, "empty expression"));
    }
    let first = s.chars().next().expect("non-empty");
    if first.is_ascii_digit() || first == '-' {
        return Ok(Expr::Const(parse_int(line, s)?));
    }
    // label, label+int, label-int
    if let Some(plus) = s.find('+') {
        let name = s[..plus].trim().to_string();
        let off = parse_int(line, &s[plus + 1..])?;
        return Ok(Expr::Label(name, off));
    }
    if let Some(minus) = s[1..].find('-').map(|i| i + 1) {
        let name = s[..minus].trim().to_string();
        let off = parse_int(line, &s[minus + 1..])?;
        return Ok(Expr::Label(name, -off));
    }
    Ok(Expr::Label(s.to_string(), 0))
}

fn parse_string(line: usize, s: &str) -> Result<String, AsmError> {
    let s = s.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|t| t.strip_suffix('"'))
        .ok_or_else(|| err(line, "expected a double-quoted string"))?;
    let mut out = String::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('n') => out.push('\n'),
                Some('t') => out.push('\t'),
                Some('0') => out.push('\0'),
                Some('\\') => out.push('\\'),
                Some('"') => out.push('"'),
                other => return Err(err(line, format!("bad escape `\\{:?}`", other))),
            }
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// A parsed operand.
#[derive(Debug, Clone)]
enum Operand {
    Reg(Reg),
    Xmm(Xmm),
    Mem(MemTemplate),
    Expr(Expr),
}

fn parse_operand(line: usize, s: &str) -> Result<Operand, AsmError> {
    let s = s.trim();
    if let Some(r) = Reg::parse(s) {
        return Ok(Operand::Reg(r));
    }
    if let Some(x) = Xmm::parse(s) {
        return Ok(Operand::Xmm(x));
    }
    // Memory operand, optionally with segment prefix.
    let (seg, rest) = if let Some(r) = s.strip_prefix("fs:") {
        (Some(Seg::Fs), r.trim())
    } else if let Some(r) = s.strip_prefix("gs:") {
        (Some(Seg::Gs), r.trim())
    } else {
        (None, s)
    };
    if rest.starts_with('[') {
        let inner = rest
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| err(line, format!("unterminated memory operand `{s}`")))?;
        return parse_mem(line, inner, seg).map(Operand::Mem);
    }
    if seg.is_some() {
        return Err(err(line, "segment prefix requires a [memory] operand"));
    }
    Ok(Operand::Expr(parse_expr(line, s)?))
}

fn parse_mem(line: usize, inner: &str, seg: Option<Seg>) -> Result<MemTemplate, AsmError> {
    let mut base: Option<Reg> = None;
    let mut index: Option<Reg> = None;
    let mut scale = Scale::S1;
    let mut disp = Expr::Const(0);
    let mut have_disp = false;

    // Split on +/- at top level, keeping the sign with the term.
    let mut terms: Vec<(bool, &str)> = Vec::new();
    let mut start = 0usize;
    let mut sign = false; // false = +, true = -
    let b = inner.as_bytes();
    for i in 0..b.len() {
        if b[i] == b'+' || b[i] == b'-' {
            let term = inner[start..i].trim();
            if !term.is_empty() {
                terms.push((sign, term));
            } else if !terms.is_empty() || sign {
                return Err(err(line, format!("bad memory operand `[{inner}]`")));
            }
            sign = b[i] == b'-';
            start = i + 1;
        }
    }
    let tail = inner[start..].trim();
    if !tail.is_empty() {
        terms.push((sign, tail));
    }
    if terms.is_empty() {
        return Err(err(line, "empty memory operand"));
    }

    for (neg, term) in terms {
        if let Some(star) = term.find('*') {
            let (r, sc) = (term[..star].trim(), term[star + 1..].trim());
            let r = Reg::parse(r).ok_or_else(|| err(line, format!("bad index register `{r}`")))?;
            let sc = match parse_int(line, sc)? {
                1 => Scale::S1,
                2 => Scale::S2,
                4 => Scale::S4,
                8 => Scale::S8,
                other => return Err(err(line, format!("bad scale `{other}` (1/2/4/8)"))),
            };
            if neg {
                return Err(err(line, "index term cannot be negative"));
            }
            if index.is_some() {
                return Err(err(line, "multiple index terms"));
            }
            index = Some(r);
            scale = sc;
        } else if let Some(r) = Reg::parse(term) {
            if neg {
                return Err(err(line, "register term cannot be negative"));
            }
            if base.is_none() {
                base = Some(r);
            } else if index.is_none() {
                index = Some(r);
            } else {
                return Err(err(line, "too many register terms"));
            }
        } else {
            if have_disp {
                return Err(err(line, "multiple displacement terms"));
            }
            let e = parse_expr(line, term)?;
            disp = if neg {
                match e {
                    Expr::Const(v) => Expr::Const(-v),
                    Expr::Label(..) => return Err(err(line, "cannot negate a label displacement")),
                }
            } else {
                e
            };
            have_disp = true;
        }
    }
    Ok(MemTemplate {
        base,
        index,
        scale,
        disp,
        seg,
    })
}

fn expect_reg(line: usize, o: Operand) -> Result<Reg, AsmError> {
    match o {
        Operand::Reg(r) => Ok(r),
        other => Err(err(line, format!("expected a register, found {other:?}"))),
    }
}

fn expect_xmm(line: usize, o: Operand) -> Result<Xmm, AsmError> {
    match o {
        Operand::Xmm(x) => Ok(x),
        other => Err(err(
            line,
            format!("expected an xmm register, found {other:?}"),
        )),
    }
}

fn expect_mem(line: usize, o: Operand) -> Result<MemTemplate, AsmError> {
    match o {
        Operand::Mem(m) => Ok(m),
        other => Err(err(
            line,
            format!("expected a memory operand, found {other:?}"),
        )),
    }
}

fn const_i32(line: usize, e: &Expr) -> Result<i32, AsmError> {
    match e {
        Expr::Const(v) => i32::try_from(*v)
            .map_err(|_| err(line, format!("immediate {v:#x} does not fit in 32 bits"))),
        Expr::Label(..) => Err(err(
            line,
            "label immediates only allowed with `mov r, label`",
        )),
    }
}

fn parse_instruction(line: usize, s: &str) -> Result<Item, AsmError> {
    let (mn, rest) = split_first_word(s);
    let mn = mn.to_ascii_lowercase();
    let ops: Vec<Operand> = split_args(rest)
        .into_iter()
        .map(|a| parse_operand(line, a))
        .collect::<Result<_, _>>()?;

    let nops = ops.len();
    let arity = |want: usize| -> Result<(), AsmError> {
        if nops == want {
            Ok(())
        } else {
            Err(err(
                line,
                format!("`{mn}` expects {want} operand(s), found {nops}"),
            ))
        }
    };

    // Zero-operand instructions.
    if let Some(i) = match mn.as_str() {
        "nop" => Some(Insn::Nop),
        "ret" => Some(Insn::Ret),
        "syscall" => Some(Insn::Syscall),
        "mfence" => Some(Insn::Mfence),
        "repmovs" => Some(Insn::RepMovs),
        "pause" => Some(Insn::Pause),
        "rdtsc" => Some(Insn::Rdtsc),
        "ud2" => Some(Insn::Ud2),
        "pushfq" => Some(Insn::Pushfq),
        "popfq" => Some(Insn::Popfq),
        _ => None,
    } {
        arity(0)?;
        return Ok(Item::Insn(i));
    }

    // ALU ops with register destination.
    if let Some(op) = AluOp::ALL.iter().copied().find(|o| o.mnemonic() == mn) {
        arity(2)?;
        let mut it = ops.into_iter();
        let dst = expect_reg(line, it.next().expect("arity"))?;
        return match it.next().expect("arity") {
            Operand::Reg(src) => Ok(Item::Insn(Insn::AluRR(op, dst, src))),
            Operand::Expr(e) => Ok(Item::Insn(Insn::AluRI(op, dst, const_i32(line, &e)?))),
            other => Err(err(line, format!("bad `{mn}` source operand {other:?}"))),
        };
    }

    // FP ops.
    if let Some(op) = FpOp::ALL.iter().copied().find(|o| o.mnemonic() == mn) {
        arity(2)?;
        let mut it = ops.into_iter();
        let dst = expect_xmm(line, it.next().expect("arity"))?;
        let src = expect_xmm(line, it.next().expect("arity"))?;
        return Ok(Item::Insn(Insn::FpRR(op, dst, src)));
    }

    // Conditional jumps.
    if let Some(cond) = mn
        .strip_prefix('j')
        .and_then(|suf| Cond::ALL.iter().copied().find(|c| c.suffix() == suf))
    {
        arity(1)?;
        return match ops.into_iter().next().expect("arity") {
            Operand::Expr(e) => Ok(Item::Branch(BranchKind::Jcc(cond), e)),
            other => Err(err(line, format!("bad jump target {other:?}"))),
        };
    }

    match mn.as_str() {
        "mov" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let a = it.next().expect("arity");
            let b = it.next().expect("arity");
            match (a, b) {
                (Operand::Reg(d), Operand::Reg(s)) => Ok(Item::Insn(Insn::MovRR(d, s))),
                (Operand::Reg(d), Operand::Expr(e)) => Ok(Item::MovRI(d, e)),
                (Operand::Reg(d), Operand::Mem(m)) => Ok(Item::WithMem(MemShape::Load(d), m)),
                (Operand::Mem(m), Operand::Reg(s)) => Ok(Item::WithMem(MemShape::Store(s), m)),
                (a, b) => Err(err(line, format!("bad `mov` operands {a:?}, {b:?}"))),
            }
        }
        "movb" => {
            arity(2)?;
            let mut it = ops.into_iter();
            match (it.next().expect("arity"), it.next().expect("arity")) {
                (Operand::Reg(d), Operand::Mem(m)) => Ok(Item::WithMem(MemShape::LoadB(d), m)),
                (Operand::Mem(m), Operand::Reg(s)) => Ok(Item::WithMem(MemShape::StoreB(s), m)),
                (a, b) => Err(err(line, format!("bad `movb` operands {a:?}, {b:?}"))),
            }
        }
        "movd" => {
            arity(2)?;
            let mut it = ops.into_iter();
            match (it.next().expect("arity"), it.next().expect("arity")) {
                (Operand::Reg(d), Operand::Mem(m)) => Ok(Item::WithMem(MemShape::LoadW(d), m)),
                (Operand::Mem(m), Operand::Reg(s)) => Ok(Item::WithMem(MemShape::StoreW(s), m)),
                (a, b) => Err(err(line, format!("bad `movd` operands {a:?}, {b:?}"))),
            }
        }
        "lea" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let d = expect_reg(line, it.next().expect("arity"))?;
            let m = expect_mem(line, it.next().expect("arity"))?;
            Ok(Item::WithMem(MemShape::Lea(d), m))
        }
        "push" => {
            arity(1)?;
            Ok(Item::Insn(Insn::Push(expect_reg(
                line,
                ops.into_iter().next().expect("arity"),
            )?)))
        }
        "pop" => {
            arity(1)?;
            Ok(Item::Insn(Insn::Pop(expect_reg(
                line,
                ops.into_iter().next().expect("arity"),
            )?)))
        }
        "neg" => {
            arity(1)?;
            Ok(Item::Insn(Insn::Neg(expect_reg(
                line,
                ops.into_iter().next().expect("arity"),
            )?)))
        }
        "not" => {
            arity(1)?;
            Ok(Item::Insn(Insn::Not(expect_reg(
                line,
                ops.into_iter().next().expect("arity"),
            )?)))
        }
        "cmp" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let a = expect_reg(line, it.next().expect("arity"))?;
            match it.next().expect("arity") {
                Operand::Reg(b) => Ok(Item::Insn(Insn::CmpRR(a, b))),
                Operand::Expr(e) => Ok(Item::Insn(Insn::CmpRI(a, const_i32(line, &e)?))),
                other => Err(err(line, format!("bad `cmp` operand {other:?}"))),
            }
        }
        "test" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let a = expect_reg(line, it.next().expect("arity"))?;
            let b = expect_reg(line, it.next().expect("arity"))?;
            Ok(Item::Insn(Insn::TestRR(a, b)))
        }
        "jmp" => {
            arity(1)?;
            match ops.into_iter().next().expect("arity") {
                Operand::Expr(e) => Ok(Item::Branch(BranchKind::Jmp, e)),
                Operand::Reg(r) => Ok(Item::Insn(Insn::JmpR(r))),
                Operand::Mem(m) => Ok(Item::WithMem(MemShape::JmpM, m)),
                other => Err(err(line, format!("bad `jmp` target {other:?}"))),
            }
        }
        "call" => {
            arity(1)?;
            match ops.into_iter().next().expect("arity") {
                Operand::Expr(e) => Ok(Item::Branch(BranchKind::Call, e)),
                Operand::Reg(r) => Ok(Item::Insn(Insn::CallR(r))),
                other => Err(err(line, format!("bad `call` target {other:?}"))),
            }
        }
        "xchg" | "xadd" | "cmpxchg" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let m = expect_mem(line, it.next().expect("arity"))?;
            let r = expect_reg(line, it.next().expect("arity"))?;
            let shape = match mn.as_str() {
                "xchg" => MemShape::Xchg(r),
                "xadd" => MemShape::LockXadd(r),
                _ => MemShape::LockCmpXchg(r),
            };
            Ok(Item::WithMem(shape, m))
        }
        "marker" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let kind = match it.next().expect("arity") {
                Operand::Expr(Expr::Label(name, 0)) => MarkerKind::parse(&name)
                    .ok_or_else(|| err(line, format!("unknown marker kind `{name}`")))?,
                other => return Err(err(line, format!("bad marker kind {other:?}"))),
            };
            let tag = match it.next().expect("arity") {
                Operand::Expr(e) => const_i32(line, &e)? as u32,
                other => return Err(err(line, format!("bad marker tag {other:?}"))),
            };
            Ok(Item::Insn(Insn::Marker(kind, tag)))
        }
        "rdfsbase" | "wrfsbase" | "rdgsbase" | "wrgsbase" => {
            arity(1)?;
            let r = expect_reg(line, ops.into_iter().next().expect("arity"))?;
            Ok(Item::Insn(match mn.as_str() {
                "rdfsbase" => Insn::RdFsBase(r),
                "wrfsbase" => Insn::WrFsBase(r),
                "rdgsbase" => Insn::RdGsBase(r),
                _ => Insn::WrGsBase(r),
            }))
        }
        "fxsave" | "fxrstor" | "xsave" | "xrstor" => {
            arity(1)?;
            let m = expect_mem(line, ops.into_iter().next().expect("arity"))?;
            let shape = match mn.as_str() {
                "fxsave" => MemShape::Fxsave,
                "fxrstor" => MemShape::Fxrstor,
                "xsave" => MemShape::Xsave,
                _ => MemShape::Xrstor,
            };
            Ok(Item::WithMem(shape, m))
        }
        "movsd" => {
            arity(2)?;
            let mut it = ops.into_iter();
            match (it.next().expect("arity"), it.next().expect("arity")) {
                (Operand::Xmm(d), Operand::Xmm(s)) => Ok(Item::Insn(Insn::MovsdXX(d, s))),
                (Operand::Xmm(d), Operand::Mem(m)) => Ok(Item::WithMem(MemShape::MovsdXM(d), m)),
                (Operand::Mem(m), Operand::Xmm(s)) => Ok(Item::WithMem(MemShape::MovsdMX(s), m)),
                (a, b) => Err(err(line, format!("bad `movsd` operands {a:?}, {b:?}"))),
            }
        }
        "cvtsi2sd" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let x = expect_xmm(line, it.next().expect("arity"))?;
            let r = expect_reg(line, it.next().expect("arity"))?;
            Ok(Item::Insn(Insn::Cvtsi2sd(x, r)))
        }
        "cvttsd2si" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let r = expect_reg(line, it.next().expect("arity"))?;
            let x = expect_xmm(line, it.next().expect("arity"))?;
            Ok(Item::Insn(Insn::Cvttsd2si(r, x)))
        }
        "comisd" => {
            arity(2)?;
            let mut it = ops.into_iter();
            let a = expect_xmm(line, it.next().expect("arity"))?;
            let b = expect_xmm(line, it.next().expect("arity"))?;
            Ok(Item::Insn(Insn::Comisd(a, b)))
        }
        "movq" => {
            arity(2)?;
            let mut it = ops.into_iter();
            match (it.next().expect("arity"), it.next().expect("arity")) {
                (Operand::Reg(r), Operand::Xmm(x)) => Ok(Item::Insn(Insn::MovqRX(r, x))),
                (Operand::Xmm(x), Operand::Reg(r)) => Ok(Item::Insn(Insn::MovqXR(x, r))),
                (a, b) => Err(err(line, format!("bad `movq` operands {a:?}, {b:?}"))),
            }
        }
        other => Err(err(line, format!("unknown mnemonic `{other}`"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decode::decode;

    fn decode_all(chunk: &Chunk) -> Vec<Insn> {
        let mut out = Vec::new();
        let mut pos = 0usize;
        while pos < chunk.bytes.len() {
            let (i, len) = decode(&chunk.bytes[pos..]).expect("valid stream");
            out.push(i);
            pos += len;
        }
        out
    }

    #[test]
    fn assembles_simple_program() {
        let p = assemble(
            r#"
            .org 0x400000
            start:
                mov rax, 1
                add rax, 2
                ret
            "#,
        )
        .expect("assembles");
        assert_eq!(p.origin, 0x400000);
        assert_eq!(p.entry, 0x400000);
        let insns = decode_all(&p.chunks[0]);
        assert_eq!(
            insns,
            vec![
                Insn::MovRI(Reg::Rax, 1),
                Insn::AluRI(AluOp::Add, Reg::Rax, 2),
                Insn::Ret
            ]
        );
    }

    #[test]
    fn resolves_forward_and_backward_branches() {
        let p = assemble(
            r#"
            .org 0x1000
            start:
                jmp fwd
            back:
                ret
            fwd:
                jne back
                call back
            "#,
        )
        .expect("assembles");
        let insns = decode_all(&p.chunks[0]);
        // jmp is 5 bytes, ret 1 byte: fwd = start+6, so rel = 6-5 = 1.
        assert_eq!(insns[0], Insn::Jmp(1));
        assert_eq!(insns[1], Insn::Ret);
        // jne at 0x1006 (len 6): target back=0x1005, rel = 0x1005-0x100c = -7.
        assert_eq!(insns[2], Insn::Jcc(Cond::Ne, -7));
        assert_eq!(insns[3], Insn::Call(0x1005 - 0x1011));
    }

    #[test]
    fn label_as_mov_immediate() {
        let p = assemble(
            r#"
            .org 0x2000
            start:
                mov rdi, data
                ret
            data:
                .quad 7, data
            "#,
        )
        .expect("assembles");
        let data = p.symbol("data").expect("symbol");
        assert_eq!(data, 0x2000 + 10 + 1);
        let insns = decode_all(&p.chunks[0]);
        assert_eq!(insns[0], Insn::MovRI(Reg::Rdi, data));
        // .quad with a label value.
        let chunk = &p.chunks[0];
        let off = (data - 0x2000) as usize;
        assert_eq!(&chunk.bytes[off..off + 8], &7u64.to_le_bytes());
        assert_eq!(&chunk.bytes[off + 8..off + 16], &data.to_le_bytes());
    }

    #[test]
    fn memory_operand_forms() {
        let p = assemble(
            r#"
            .org 0
            start:
                mov rax, [rbx]
                mov rax, [rbx + 8]
                mov rax, [rbx + rcx*4 - 2]
                mov [rbx], rax
                mov rax, fs:[0x10]
                movb rax, [rbx]
                movd [rbx], rax
                lea rsi, [rdi + r8*8 + 0x100]
            "#,
        )
        .expect("assembles");
        let insns = decode_all(&p.chunks[0]);
        assert_eq!(insns[0], Insn::Load(Reg::Rax, Mem::base(Reg::Rbx)));
        assert_eq!(insns[1], Insn::Load(Reg::Rax, Mem::base_disp(Reg::Rbx, 8)));
        assert_eq!(
            insns[2],
            Insn::Load(Reg::Rax, Mem::base_index(Reg::Rbx, Reg::Rcx, Scale::S4, -2))
        );
        assert_eq!(insns[3], Insn::Store(Mem::base(Reg::Rbx), Reg::Rax));
        assert_eq!(
            insns[4],
            Insn::Load(Reg::Rax, Mem::abs(0x10).with_seg(Seg::Fs))
        );
        assert_eq!(insns[5], Insn::LoadB(Reg::Rax, Mem::base(Reg::Rbx)));
        assert_eq!(insns[6], Insn::StoreW(Mem::base(Reg::Rbx), Reg::Rax));
        assert_eq!(
            insns[7],
            Insn::Lea(
                Reg::Rsi,
                Mem::base_index(Reg::Rdi, Reg::R8, Scale::S8, 0x100)
            )
        );
    }

    #[test]
    fn data_directives() {
        let p = assemble(
            r#"
            .org 0x3000
            msg: .asciz "hi\n"
            .align 8
            vals: .quad 1, 2
            buf: .zero 16
            b: .byte 1, 2, 0xff
            "#,
        )
        .expect("assembles");
        let c = &p.chunks[0];
        assert_eq!(&c.bytes[..4], b"hi\n\0");
        let vals = (p.symbol("vals").unwrap() - 0x3000) as usize;
        assert_eq!(vals % 8, 0, "aligned");
        assert_eq!(&c.bytes[vals..vals + 8], &1u64.to_le_bytes());
        let b = (p.symbol("b").unwrap() - 0x3000) as usize;
        assert_eq!(&c.bytes[b..b + 3], &[1, 2, 0xff]);
    }

    #[test]
    fn multiple_org_chunks() {
        let p = assemble(
            r#"
            .org 0x400000
            start: ret
            .org 0x600000
            data: .quad 42
            "#,
        )
        .expect("assembles");
        assert_eq!(p.chunks.len(), 2);
        assert_eq!(p.chunks[0].addr, 0x400000);
        assert_eq!(p.chunks[1].addr, 0x600000);
        assert_eq!(p.symbol("data"), Some(0x600000));
    }

    #[test]
    fn entry_directive() {
        let p = assemble(
            r#"
            .org 0
            .entry main
            helper: ret
            main: nop
            "#,
        )
        .expect("assembles");
        assert_eq!(p.entry, 1);
    }

    #[test]
    fn duplicate_label_rejected() {
        let e = assemble(".org 0\na: nop\na: nop\n").expect_err("duplicate");
        assert!(e.message.contains("duplicate label"), "{e}");
    }

    #[test]
    fn undefined_label_rejected() {
        let e = assemble(".org 0\nstart: jmp nowhere\n").expect_err("undefined");
        assert!(e.message.contains("undefined label"), "{e}");
        assert_eq!(e.line, 2);
    }

    #[test]
    fn unknown_mnemonic_rejected() {
        let e = assemble(".org 0\nstart: frobnicate rax\n").expect_err("unknown");
        assert!(e.message.contains("unknown mnemonic"), "{e}");
    }

    #[test]
    fn markers_and_special_instructions() {
        let p = assemble(
            r#"
            .org 0
            start:
                marker sniper, 1
                marker ssc, 0x1234
                marker simics, 2
                pause
                mfence
                xadd [rax], rbx
                cmpxchg [rcx], rdx
                rdfsbase r10
                wrgsbase r11
            "#,
        )
        .expect("assembles");
        let insns = decode_all(&p.chunks[0]);
        assert_eq!(insns[0], Insn::Marker(MarkerKind::Sniper, 1));
        assert_eq!(insns[1], Insn::Marker(MarkerKind::Ssc, 0x1234));
        assert_eq!(insns[2], Insn::Marker(MarkerKind::Simics, 2));
        assert_eq!(insns[5], Insn::LockXadd(Mem::base(Reg::Rax), Reg::Rbx));
        assert_eq!(insns[6], Insn::LockCmpXchg(Mem::base(Reg::Rcx), Reg::Rdx));
        assert_eq!(insns[7], Insn::RdFsBase(Reg::R10));
        assert_eq!(insns[8], Insn::WrGsBase(Reg::R11));
    }

    #[test]
    fn fp_instructions() {
        let p = assemble(
            r#"
            .org 0
            start:
                movsd xmm0, [rax]
                movsd [rax], xmm1
                movsd xmm2, xmm3
                addsd xmm0, xmm1
                sqrtsd xmm4, xmm4
                cvtsi2sd xmm0, rax
                cvttsd2si rbx, xmm0
                comisd xmm0, xmm1
                movq rax, xmm0
                movq xmm1, rbx
            "#,
        )
        .expect("assembles");
        let insns = decode_all(&p.chunks[0]);
        assert_eq!(insns.len(), 10);
        assert_eq!(insns[3], Insn::FpRR(FpOp::Add, Xmm(0), Xmm(1)));
        assert_eq!(insns[9], Insn::MovqXR(Xmm(1), Reg::Rbx));
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let p = assemble(
            "; leading comment\n.org 0\nstart: nop ; trailing\n# hash comment\n\n   \n ret\n",
        )
        .expect("assembles");
        let insns = decode_all(&p.chunks[0]);
        assert_eq!(insns, vec![Insn::Nop, Insn::Ret]);
    }

    #[test]
    fn builder_api_concatenates_sources() {
        let p = Assembler::new()
            .source(".org 0x100")
            .source("start: nop")
            .assemble()
            .expect("assembles");
        assert_eq!(p.entry, 0x100);
    }
}
