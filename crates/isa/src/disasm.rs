//! Disassembler: formats decoded instructions back into assembler syntax.

use crate::decode::{decode, DecodeError};
use crate::insn::Insn;
use std::fmt::Write as _;

/// Formats a single instruction at virtual address `addr` (used to render
/// relative branch targets as absolute addresses).
pub fn format_insn(insn: &Insn, addr: u64, len: usize) -> String {
    let next = addr.wrapping_add(len as u64);
    let target = |rel: i32| next.wrapping_add(rel as i64 as u64);
    match *insn {
        Insn::Nop => "nop".into(),
        Insn::MovRR(d, s) => format!("mov {d}, {s}"),
        Insn::MovRI(d, imm) => format!("mov {d}, {imm:#x}"),
        Insn::Load(d, m) => format!("mov {d}, {m}"),
        Insn::Store(m, s) => format!("mov {m}, {s}"),
        Insn::LoadB(d, m) => format!("movb {d}, {m}"),
        Insn::StoreB(m, s) => format!("movb {m}, {s}"),
        Insn::LoadW(d, m) => format!("movd {d}, {m}"),
        Insn::StoreW(m, s) => format!("movd {m}, {s}"),
        Insn::Lea(d, m) => format!("lea {d}, {m}"),
        Insn::Push(r) => format!("push {r}"),
        Insn::Pop(r) => format!("pop {r}"),
        Insn::Pushfq => "pushfq".into(),
        Insn::Popfq => "popfq".into(),
        Insn::Xchg(m, r) => format!("xchg {m}, {r}"),
        Insn::AluRR(op, d, s) => format!("{} {d}, {s}", op.mnemonic()),
        Insn::AluRI(op, d, imm) => format!("{} {d}, {imm:#x}", op.mnemonic()),
        Insn::Neg(r) => format!("neg {r}"),
        Insn::Not(r) => format!("not {r}"),
        Insn::CmpRR(a, b) => format!("cmp {a}, {b}"),
        Insn::CmpRI(a, imm) => format!("cmp {a}, {imm:#x}"),
        Insn::TestRR(a, b) => format!("test {a}, {b}"),
        Insn::Jmp(rel) => format!("jmp {:#x}", target(rel)),
        Insn::JmpR(r) => format!("jmp {r}"),
        Insn::JmpM(m) => format!("jmp {m}"),
        Insn::Jcc(c, rel) => format!("j{} {:#x}", c.suffix(), target(rel)),
        Insn::Call(rel) => format!("call {:#x}", target(rel)),
        Insn::CallR(r) => format!("call {r}"),
        Insn::Ret => "ret".into(),
        Insn::LockXadd(m, r) => format!("xadd {m}, {r}"),
        Insn::LockCmpXchg(m, r) => format!("cmpxchg {m}, {r}"),
        Insn::RepMovs => "repmovs".into(),
        Insn::Mfence => "mfence".into(),
        Insn::Pause => "pause".into(),
        Insn::Syscall => "syscall".into(),
        Insn::Rdtsc => "rdtsc".into(),
        Insn::Ud2 => "ud2".into(),
        Insn::Marker(k, tag) => format!("marker {}, {tag:#x}", k.name()),
        Insn::RdFsBase(r) => format!("rdfsbase {r}"),
        Insn::WrFsBase(r) => format!("wrfsbase {r}"),
        Insn::RdGsBase(r) => format!("rdgsbase {r}"),
        Insn::WrGsBase(r) => format!("wrgsbase {r}"),
        Insn::Fxsave(m) => format!("fxsave {m}"),
        Insn::Fxrstor(m) => format!("fxrstor {m}"),
        Insn::Xsave(m) => format!("xsave {m}"),
        Insn::Xrstor(m) => format!("xrstor {m}"),
        Insn::MovsdXM(x, m) => format!("movsd {x}, {m}"),
        Insn::MovsdMX(m, x) => format!("movsd {m}, {x}"),
        Insn::MovsdXX(d, s) => format!("movsd {d}, {s}"),
        Insn::FpRR(op, d, s) => format!("{} {d}, {s}", op.mnemonic()),
        Insn::Cvtsi2sd(x, r) => format!("cvtsi2sd {x}, {r}"),
        Insn::Cvttsd2si(r, x) => format!("cvttsd2si {r}, {x}"),
        Insn::Comisd(a, b) => format!("comisd {a}, {b}"),
        Insn::MovqRX(r, x) => format!("movq {r}, {x}"),
        Insn::MovqXR(x, r) => format!("movq {x}, {r}"),
    }
}

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DisasmLine {
    /// Virtual address of the instruction.
    pub addr: u64,
    /// Encoded length in bytes.
    pub len: usize,
    /// The decoded instruction.
    pub insn: Insn,
    /// Formatted assembler text.
    pub text: String,
}

/// Disassembles the byte stream starting at virtual address `addr`.
///
/// Stops at the first undecodable byte; the error (if any) is returned
/// alongside the instructions decoded so far, mirroring how objdump keeps
/// going until the stream breaks.
pub fn disassemble(bytes: &[u8], addr: u64) -> (Vec<DisasmLine>, Option<DecodeError>) {
    let mut lines = Vec::new();
    let mut pos = 0usize;
    while pos < bytes.len() {
        match decode(&bytes[pos..]) {
            Ok((insn, len)) => {
                let a = addr + pos as u64;
                let text = format_insn(&insn, a, len);
                lines.push(DisasmLine {
                    addr: a,
                    len,
                    insn,
                    text,
                });
                pos += len;
            }
            Err(e) => return (lines, Some(e)),
        }
    }
    (lines, None)
}

/// Renders a full listing (address, bytes-in-hex, text), objdump style.
pub fn listing(bytes: &[u8], addr: u64) -> String {
    let (lines, err) = disassemble(bytes, addr);
    let mut out = String::new();
    for l in &lines {
        let window = &bytes[(l.addr - addr) as usize..(l.addr - addr) as usize + l.len];
        let hex: String = window.iter().map(|b| format!("{b:02x} ")).collect();
        let _ = writeln!(out, "{:>12x}:  {:<33} {}", l.addr, hex.trim_end(), l.text);
    }
    if let Some(e) = err {
        let _ = writeln!(out, "              <decode error: {e}>");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;
    use crate::encode::encode;
    use crate::insn::{Cond, Mem};
    use crate::reg::Reg;

    #[test]
    fn roundtrip_through_assembler() {
        // Disassembled text must re-assemble to identical bytes (for
        // instructions without relative branches, which change form).
        let src = r#"
            .org 0x400000
            start:
                mov rax, 0x1234
                mov rbx, [rax + 8]
                add rbx, 1
                push rbx
                pop rcx
                xadd [rax], rcx
                movsd xmm0, [rax]
                addsd xmm0, xmm0
                syscall
                ret
        "#;
        let p1 = assemble(src).expect("assembles");
        let text = listing(p1.bytes(), 0x400000);
        assert!(text.contains("mov rax, 0x1234"), "{text}");
        assert!(text.contains("xadd [rax], rcx"), "{text}");

        let (lines, err) = disassemble(p1.bytes(), 0x400000);
        assert!(err.is_none());
        // Re-assemble each non-branch line and compare bytes.
        let mut re = String::from(".org 0x400000\nstart:\n");
        for l in &lines {
            re.push_str(&l.text);
            re.push('\n');
        }
        let p2 = assemble(&re).expect("re-assembles");
        assert_eq!(p1.bytes(), p2.bytes());
    }

    #[test]
    fn branch_targets_rendered_absolute() {
        let jcc = encode(&crate::insn::Insn::Jcc(Cond::Ne, -6));
        let (lines, _) = disassemble(&jcc, 0x1000);
        assert_eq!(lines[0].text, "jne 0x1000");
    }

    #[test]
    fn garbage_reports_error_but_keeps_prefix() {
        let mut bytes = encode(&crate::insn::Insn::Push(Reg::Rax));
        bytes.push(0xee); // bad opcode
        let (lines, err) = disassemble(&bytes, 0);
        assert_eq!(lines.len(), 1);
        assert!(err.is_some());
    }

    #[test]
    fn mem_operand_displayed() {
        let i = crate::insn::Insn::Load(Reg::Rax, Mem::base_disp(Reg::Rbp, -16));
        assert_eq!(format_insn(&i, 0, 9), "mov rax, [rbp - 0x10]");
    }
}
