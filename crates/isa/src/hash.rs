//! A small stable content hasher (64-bit FNV-1a).
//!
//! The pipeline cache keys profiles and pinballs by the *content* of the
//! inputs that produced them (program bytes, machine configuration,
//! selection parameters). `std::hash` offers no stability guarantee across
//! releases or processes, so cache keys use this fixed algorithm instead.

/// Incremental 64-bit FNV-1a hasher.
#[derive(Debug, Clone, Copy)]
pub struct Fnv64(u64);

const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const PRIME: u64 = 0x0000_0100_0000_01b3;

impl Default for Fnv64 {
    fn default() -> Self {
        Fnv64::new()
    }
}

impl Fnv64 {
    /// A fresh hasher at the standard FNV offset basis.
    pub fn new() -> Fnv64 {
        Fnv64(OFFSET)
    }

    /// Absorbs raw bytes.
    pub fn bytes(mut self, bytes: &[u8]) -> Fnv64 {
        for &b in bytes {
            self.0 = (self.0 ^ u64::from(b)).wrapping_mul(PRIME);
        }
        self
    }

    /// Absorbs a `u64` (little-endian).
    pub fn u64(self, v: u64) -> Fnv64 {
        self.bytes(&v.to_le_bytes())
    }

    /// Absorbs a string, length-prefixed so concatenations cannot collide.
    pub fn str(self, s: &str) -> Fnv64 {
        self.u64(s.len() as u64).bytes(s.as_bytes())
    }

    /// The digest so far.
    pub fn finish(self) -> u64 {
        self.0
    }
}

/// One-shot convenience over [`Fnv64`].
pub fn fnv64(bytes: &[u8]) -> u64 {
    Fnv64::new().bytes(bytes).finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn length_prefix_separates_strings() {
        let ab_c = Fnv64::new().str("ab").str("c").finish();
        let a_bc = Fnv64::new().str("a").str("bc").finish();
        assert_ne!(ab_c, a_bc);
    }

    #[test]
    fn incremental_equals_oneshot() {
        let one = fnv64(b"hello world");
        let two = Fnv64::new().bytes(b"hello ").bytes(b"world").finish();
        assert_eq!(one, two);
    }
}
