//! Binary instruction encoder.
//!
//! The encoding is variable-length, like x86: a one-byte primary opcode
//! followed by operand bytes. Memory operands occupy a fixed 7-byte form
//! (`base/index/scale/seg` descriptor plus a 32-bit displacement); 64-bit
//! immediates are 8 bytes; relative branch targets and ALU immediates are
//! 4 bytes. Instruction lengths therefore range from 1 to 16 bytes, so a
//! stream of data bytes decodes (or faults) realistically when an ELFie
//! strays off its captured pages.

use crate::insn::{Insn, Mem, Seg};

// Primary opcodes. Grouped by functional class; gaps leave room for
// extensions without renumbering.
pub(crate) mod op {
    pub const NOP: u8 = 0x00;
    pub const MOV_RR: u8 = 0x01;
    pub const MOV_RI: u8 = 0x02;
    pub const LOAD: u8 = 0x03;
    pub const STORE: u8 = 0x04;
    pub const LOAD_B: u8 = 0x05;
    pub const STORE_B: u8 = 0x06;
    pub const LOAD_W: u8 = 0x07;
    pub const STORE_W: u8 = 0x08;
    pub const LEA: u8 = 0x09;
    pub const PUSH: u8 = 0x0a;
    pub const POP: u8 = 0x0b;
    pub const PUSHFQ: u8 = 0x0c;
    pub const POPFQ: u8 = 0x0d;
    pub const XCHG: u8 = 0x0e;

    pub const ALU_RR: u8 = 0x10;
    pub const ALU_RI: u8 = 0x11;
    pub const NEG: u8 = 0x12;
    pub const NOT: u8 = 0x13;
    pub const CMP_RR: u8 = 0x14;
    pub const CMP_RI: u8 = 0x15;
    pub const TEST_RR: u8 = 0x16;

    pub const JMP: u8 = 0x20;
    pub const JMP_R: u8 = 0x21;
    pub const JMP_M: u8 = 0x26;
    pub const JCC: u8 = 0x22;
    pub const CALL: u8 = 0x23;
    pub const CALL_R: u8 = 0x24;
    pub const RET: u8 = 0x25;

    pub const LOCK_XADD: u8 = 0x30;
    pub const LOCK_CMPXCHG: u8 = 0x31;
    pub const MFENCE: u8 = 0x32;
    pub const REP_MOVS: u8 = 0x34;
    pub const PAUSE: u8 = 0x33;

    pub const SYSCALL: u8 = 0x40;
    pub const RDTSC: u8 = 0x41;
    pub const UD2: u8 = 0x42;
    pub const MARKER: u8 = 0x43;

    pub const RD_FS_BASE: u8 = 0x50;
    pub const WR_FS_BASE: u8 = 0x51;
    pub const RD_GS_BASE: u8 = 0x52;
    pub const WR_GS_BASE: u8 = 0x53;

    pub const FXSAVE: u8 = 0x60;
    pub const FXRSTOR: u8 = 0x61;
    pub const XSAVE: u8 = 0x62;
    pub const XRSTOR: u8 = 0x63;

    pub const MOVSD_XM: u8 = 0x70;
    pub const MOVSD_MX: u8 = 0x71;
    pub const MOVSD_XX: u8 = 0x72;
    pub const FP_RR: u8 = 0x73;
    pub const CVTSI2SD: u8 = 0x74;
    pub const CVTTSD2SI: u8 = 0x75;
    pub const COMISD: u8 = 0x76;
    pub const MOVQ_RX: u8 = 0x77;
    pub const MOVQ_XR: u8 = 0x78;
}

pub(crate) const MEM_PRESENT: u8 = 0x80;

fn push_mem(out: &mut Vec<u8>, m: &Mem) {
    let b0 = match m.base {
        Some(r) => MEM_PRESENT | r.index() as u8,
        None => 0,
    };
    let b1 = match m.index {
        Some(r) => MEM_PRESENT | (m.scale.log2() << 4) | r.index() as u8,
        None => 0,
    };
    let b2 = match m.seg {
        None => 0,
        Some(Seg::Fs) => 1,
        Some(Seg::Gs) => 2,
    };
    out.push(b0);
    out.push(b1);
    out.push(b2);
    out.extend_from_slice(&m.disp.to_le_bytes());
}

/// Encodes `insn`, appending its bytes to `out`.
///
/// The companion [`fn@crate::decode`] function inverts this exactly; the pair
/// is covered by a round-trip property test.
pub fn encode_into(insn: &Insn, out: &mut Vec<u8>) {
    match *insn {
        Insn::Nop => out.push(op::NOP),
        Insn::MovRR(d, s) => {
            out.push(op::MOV_RR);
            out.push(d.index() as u8);
            out.push(s.index() as u8);
        }
        Insn::MovRI(d, imm) => {
            out.push(op::MOV_RI);
            out.push(d.index() as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::Load(d, m) => {
            out.push(op::LOAD);
            out.push(d.index() as u8);
            push_mem(out, &m);
        }
        Insn::Store(m, s) => {
            out.push(op::STORE);
            out.push(s.index() as u8);
            push_mem(out, &m);
        }
        Insn::LoadB(d, m) => {
            out.push(op::LOAD_B);
            out.push(d.index() as u8);
            push_mem(out, &m);
        }
        Insn::StoreB(m, s) => {
            out.push(op::STORE_B);
            out.push(s.index() as u8);
            push_mem(out, &m);
        }
        Insn::LoadW(d, m) => {
            out.push(op::LOAD_W);
            out.push(d.index() as u8);
            push_mem(out, &m);
        }
        Insn::StoreW(m, s) => {
            out.push(op::STORE_W);
            out.push(s.index() as u8);
            push_mem(out, &m);
        }
        Insn::Lea(d, m) => {
            out.push(op::LEA);
            out.push(d.index() as u8);
            push_mem(out, &m);
        }
        Insn::Push(r) => {
            out.push(op::PUSH);
            out.push(r.index() as u8);
        }
        Insn::Pop(r) => {
            out.push(op::POP);
            out.push(r.index() as u8);
        }
        Insn::Pushfq => out.push(op::PUSHFQ),
        Insn::Popfq => out.push(op::POPFQ),
        Insn::Xchg(m, r) => {
            out.push(op::XCHG);
            out.push(r.index() as u8);
            push_mem(out, &m);
        }
        Insn::AluRR(o, d, s) => {
            out.push(op::ALU_RR);
            out.push(o as u8);
            out.push(d.index() as u8);
            out.push(s.index() as u8);
        }
        Insn::AluRI(o, d, imm) => {
            out.push(op::ALU_RI);
            out.push(o as u8);
            out.push(d.index() as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::Neg(r) => {
            out.push(op::NEG);
            out.push(r.index() as u8);
        }
        Insn::Not(r) => {
            out.push(op::NOT);
            out.push(r.index() as u8);
        }
        Insn::CmpRR(a, b) => {
            out.push(op::CMP_RR);
            out.push(a.index() as u8);
            out.push(b.index() as u8);
        }
        Insn::CmpRI(a, imm) => {
            out.push(op::CMP_RI);
            out.push(a.index() as u8);
            out.extend_from_slice(&imm.to_le_bytes());
        }
        Insn::TestRR(a, b) => {
            out.push(op::TEST_RR);
            out.push(a.index() as u8);
            out.push(b.index() as u8);
        }
        Insn::Jmp(rel) => {
            out.push(op::JMP);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::JmpR(r) => {
            out.push(op::JMP_R);
            out.push(r.index() as u8);
        }
        Insn::JmpM(m) => {
            out.push(op::JMP_M);
            push_mem(out, &m);
        }
        Insn::Jcc(c, rel) => {
            out.push(op::JCC);
            out.push(c as u8);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::Call(rel) => {
            out.push(op::CALL);
            out.extend_from_slice(&rel.to_le_bytes());
        }
        Insn::CallR(r) => {
            out.push(op::CALL_R);
            out.push(r.index() as u8);
        }
        Insn::Ret => out.push(op::RET),
        Insn::LockXadd(m, r) => {
            out.push(op::LOCK_XADD);
            out.push(r.index() as u8);
            push_mem(out, &m);
        }
        Insn::LockCmpXchg(m, r) => {
            out.push(op::LOCK_CMPXCHG);
            out.push(r.index() as u8);
            push_mem(out, &m);
        }
        Insn::RepMovs => out.push(op::REP_MOVS),
        Insn::Mfence => out.push(op::MFENCE),
        Insn::Pause => out.push(op::PAUSE),
        Insn::Syscall => out.push(op::SYSCALL),
        Insn::Rdtsc => out.push(op::RDTSC),
        Insn::Ud2 => out.push(op::UD2),
        Insn::Marker(k, tag) => {
            out.push(op::MARKER);
            out.push(k as u8);
            out.extend_from_slice(&tag.to_le_bytes());
        }
        Insn::RdFsBase(r) => {
            out.push(op::RD_FS_BASE);
            out.push(r.index() as u8);
        }
        Insn::WrFsBase(r) => {
            out.push(op::WR_FS_BASE);
            out.push(r.index() as u8);
        }
        Insn::RdGsBase(r) => {
            out.push(op::RD_GS_BASE);
            out.push(r.index() as u8);
        }
        Insn::WrGsBase(r) => {
            out.push(op::WR_GS_BASE);
            out.push(r.index() as u8);
        }
        Insn::Fxsave(m) => {
            out.push(op::FXSAVE);
            push_mem(out, &m);
        }
        Insn::Fxrstor(m) => {
            out.push(op::FXRSTOR);
            push_mem(out, &m);
        }
        Insn::Xsave(m) => {
            out.push(op::XSAVE);
            push_mem(out, &m);
        }
        Insn::Xrstor(m) => {
            out.push(op::XRSTOR);
            push_mem(out, &m);
        }
        Insn::MovsdXM(x, m) => {
            out.push(op::MOVSD_XM);
            out.push(x.index() as u8);
            push_mem(out, &m);
        }
        Insn::MovsdMX(m, x) => {
            out.push(op::MOVSD_MX);
            out.push(x.index() as u8);
            push_mem(out, &m);
        }
        Insn::MovsdXX(d, s) => {
            out.push(op::MOVSD_XX);
            out.push(d.index() as u8);
            out.push(s.index() as u8);
        }
        Insn::FpRR(o, d, s) => {
            out.push(op::FP_RR);
            out.push(o as u8);
            out.push(d.index() as u8);
            out.push(s.index() as u8);
        }
        Insn::Cvtsi2sd(x, r) => {
            out.push(op::CVTSI2SD);
            out.push(x.index() as u8);
            out.push(r.index() as u8);
        }
        Insn::Cvttsd2si(r, x) => {
            out.push(op::CVTTSD2SI);
            out.push(r.index() as u8);
            out.push(x.index() as u8);
        }
        Insn::Comisd(a, b) => {
            out.push(op::COMISD);
            out.push(a.index() as u8);
            out.push(b.index() as u8);
        }
        Insn::MovqRX(r, x) => {
            out.push(op::MOVQ_RX);
            out.push(r.index() as u8);
            out.push(x.index() as u8);
        }
        Insn::MovqXR(x, r) => {
            out.push(op::MOVQ_XR);
            out.push(x.index() as u8);
            out.push(r.index() as u8);
        }
    }
}

/// Encodes a single instruction into a fresh byte vector.
///
/// ```
/// use elfie_isa::{encode, Insn, Reg};
/// let bytes = encode(&Insn::MovRI(Reg::Rax, 60));
/// assert_eq!(bytes.len(), 10); // opcode + reg + imm64
/// ```
pub fn encode(insn: &Insn) -> Vec<u8> {
    let mut out = Vec::with_capacity(16);
    encode_into(insn, &mut out);
    out
}

/// Returns the encoded length of `insn` in bytes without allocating a fresh
/// buffer for callers that only need sizing (branch relaxation, layout).
pub fn encoded_len(insn: &Insn) -> usize {
    // Lengths are small and fixed per shape; computing via encode keeps a
    // single source of truth.
    encode(insn).len()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::insn::{AluOp, Mem, Scale, Seg};
    use crate::reg::Reg;

    #[test]
    fn single_byte_instructions() {
        for (i, o) in [
            (Insn::Nop, op::NOP),
            (Insn::Ret, op::RET),
            (Insn::Syscall, op::SYSCALL),
            (Insn::Mfence, op::MFENCE),
            (Insn::Pause, op::PAUSE),
            (Insn::Ud2, op::UD2),
            (Insn::Pushfq, op::PUSHFQ),
            (Insn::Popfq, op::POPFQ),
            (Insn::Rdtsc, op::RDTSC),
        ] {
            assert_eq!(encode(&i), vec![o]);
        }
    }

    #[test]
    fn mov_ri_layout() {
        let bytes = encode(&Insn::MovRI(Reg::Rdi, 0x1122_3344_5566_7788));
        assert_eq!(bytes[0], op::MOV_RI);
        assert_eq!(bytes[1], Reg::Rdi.index() as u8);
        assert_eq!(&bytes[2..], &0x1122_3344_5566_7788u64.to_le_bytes());
    }

    #[test]
    fn mem_operand_layout() {
        let m = Mem::base_index(Reg::Rbx, Reg::Rcx, Scale::S8, -12).with_seg(Seg::Gs);
        let bytes = encode(&Insn::Load(Reg::Rax, m));
        assert_eq!(bytes.len(), 1 + 1 + 7);
        assert_eq!(bytes[2], MEM_PRESENT | Reg::Rbx.index() as u8);
        assert_eq!(bytes[3], MEM_PRESENT | (3 << 4) | Reg::Rcx.index() as u8);
        assert_eq!(bytes[4], 2); // gs
        assert_eq!(&bytes[5..9], &(-12i32).to_le_bytes());
    }

    #[test]
    fn lengths_vary_like_x86() {
        assert_eq!(encoded_len(&Insn::Nop), 1);
        assert_eq!(encoded_len(&Insn::Push(Reg::Rax)), 2);
        assert_eq!(encoded_len(&Insn::Jmp(0)), 5);
        assert_eq!(encoded_len(&Insn::MovRI(Reg::Rax, 0)), 10);
        assert_eq!(encoded_len(&Insn::Load(Reg::Rax, Mem::abs(0))), 9);
        assert_eq!(encoded_len(&Insn::AluRI(AluOp::Add, Reg::Rax, 1)), 7);
    }

    mod properties {
        use super::*;
        use crate::decode::decode;
        use crate::test_strategies::arb_insn;
        use proptest::prelude::*;

        proptest! {
            // The companion of decode's `encode_decode_roundtrip`, driven
            // from the encoder side: every encodable instruction survives
            // the trip and consumes exactly its own bytes.
            #[test]
            fn every_encoding_round_trips(insn in arb_insn()) {
                let bytes = encode(&insn);
                let (decoded, len) = decode(&bytes).expect("own encoding decodes");
                prop_assert_eq!(decoded, insn);
                prop_assert_eq!(len, bytes.len());
            }

            #[test]
            fn encoded_len_is_exact_and_bounded(insn in arb_insn()) {
                let bytes = encode(&insn);
                prop_assert_eq!(encoded_len(&insn), bytes.len());
                // The documented variable-length envelope.
                prop_assert!((1..=16).contains(&bytes.len()), "{} bytes", bytes.len());
            }

            #[test]
            fn encode_into_appends_and_preserves_the_prefix(
                insn in arb_insn(),
                prefix in proptest::collection::vec(any::<u8>(), 0..24),
            ) {
                let mut buf = prefix.clone();
                encode_into(&insn, &mut buf);
                prop_assert_eq!(&buf[..prefix.len()], &prefix[..]);
                prop_assert_eq!(&buf[prefix.len()..], &encode(&insn)[..]);
            }

            // Canonical instructions encode injectively — no two distinct
            // instructions share a byte string (decode would have to pick
            // one of them, losing the other).
            #[test]
            fn distinct_instructions_encode_distinctly(a in arb_insn(), b in arb_insn()) {
                if a != b {
                    prop_assert_ne!(encode(&a), encode(&b));
                }
            }

            // Mirror of decode_never_panics_on_garbage: re-encoding
            // whatever garbage *decodes to* reproduces a decodable string.
            #[test]
            fn decoded_garbage_reencodes_decodably(
                bytes in proptest::collection::vec(any::<u8>(), 0..32),
            ) {
                if let Ok((insn, _)) = decode(&bytes) {
                    let again = encode(&insn);
                    let (insn2, len) = decode(&again).expect("re-encoding decodes");
                    prop_assert_eq!(insn2, insn);
                    prop_assert_eq!(len, again.len());
                }
            }
        }
    }
}
