//! Architectural register state: general purpose registers, flags, segment
//! bases and the XSAVE-style extended-state save area.

use std::fmt;

/// A general purpose 64-bit register.
///
/// The numbering matches the operand-encoding order used by
/// [`fn@crate::encode`]/[`fn@crate::decode`] and the layout of the packed thread
/// context that `pinball2elf` emits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    Rax = 0,
    Rcx = 1,
    Rdx = 2,
    Rbx = 3,
    Rsp = 4,
    Rbp = 5,
    Rsi = 6,
    Rdi = 7,
    R8 = 8,
    R9 = 9,
    R10 = 10,
    R11 = 11,
    R12 = 12,
    R13 = 13,
    R14 = 14,
    R15 = 15,
}

impl Reg {
    /// All sixteen registers in encoding order.
    pub const ALL: [Reg; 16] = [
        Reg::Rax,
        Reg::Rcx,
        Reg::Rdx,
        Reg::Rbx,
        Reg::Rsp,
        Reg::Rbp,
        Reg::Rsi,
        Reg::Rdi,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Encoding index of the register (0..=15).
    #[inline]
    pub const fn index(self) -> usize {
        self as usize
    }

    /// Decodes an operand byte back into a register.
    ///
    /// Returns `None` for values outside `0..=15`.
    pub const fn from_index(idx: u8) -> Option<Reg> {
        if idx < 16 {
            Some(Reg::ALL[idx as usize])
        } else {
            None
        }
    }

    /// The lower-case x86-64 style name (`"rax"`, `"r10"`, ...).
    pub const fn name(self) -> &'static str {
        match self {
            Reg::Rax => "rax",
            Reg::Rcx => "rcx",
            Reg::Rdx => "rdx",
            Reg::Rbx => "rbx",
            Reg::Rsp => "rsp",
            Reg::Rbp => "rbp",
            Reg::Rsi => "rsi",
            Reg::Rdi => "rdi",
            Reg::R8 => "r8",
            Reg::R9 => "r9",
            Reg::R10 => "r10",
            Reg::R11 => "r11",
            Reg::R12 => "r12",
            Reg::R13 => "r13",
            Reg::R14 => "r14",
            Reg::R15 => "r15",
        }
    }

    /// Parses an x86-64 style register name, case-insensitively.
    pub fn parse(name: &str) -> Option<Reg> {
        let lower = name.to_ascii_lowercase();
        Reg::ALL.iter().copied().find(|r| r.name() == lower)
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// An XMM (128-bit vector / scalar-double) register.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Xmm(pub u8);

impl Xmm {
    /// Number of XMM registers in the architecture.
    pub const COUNT: usize = 16;

    /// Encoding index (0..=15).
    #[inline]
    pub const fn index(self) -> usize {
        self.0 as usize
    }

    /// Decodes an operand byte; `None` outside `0..=15`.
    pub const fn from_index(idx: u8) -> Option<Xmm> {
        if idx < 16 {
            Some(Xmm(idx))
        } else {
            None
        }
    }

    /// Parses `"xmm0"` .. `"xmm15"`, case-insensitively.
    pub fn parse(name: &str) -> Option<Xmm> {
        let lower = name.to_ascii_lowercase();
        let rest = lower.strip_prefix("xmm")?;
        let idx: u8 = rest.parse().ok()?;
        Xmm::from_index(idx)
    }
}

impl fmt::Display for Xmm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "xmm{}", self.0)
    }
}

/// The architectural flags register (a subset of x86-64 RFLAGS).
///
/// Bit positions follow x86-64 so that a packed `RFLAGS` value round-trips
/// through pinball `.reg` files unchanged.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct Flags {
    /// Carry flag (bit 0).
    pub cf: bool,
    /// Zero flag (bit 6).
    pub zf: bool,
    /// Sign flag (bit 7).
    pub sf: bool,
    /// Overflow flag (bit 11).
    pub of: bool,
}

impl Flags {
    const CF_BIT: u64 = 1 << 0;
    const ZF_BIT: u64 = 1 << 6;
    const SF_BIT: u64 = 1 << 7;
    const OF_BIT: u64 = 1 << 11;
    /// Bit 1 of x86 RFLAGS is always set; we preserve that convention so the
    /// packed representation is recognisably x86-like in register dumps.
    const ALWAYS_ONE: u64 = 1 << 1;

    /// Packs the flags into an RFLAGS-style 64-bit value.
    pub fn to_bits(self) -> u64 {
        let mut v = Self::ALWAYS_ONE;
        if self.cf {
            v |= Self::CF_BIT;
        }
        if self.zf {
            v |= Self::ZF_BIT;
        }
        if self.sf {
            v |= Self::SF_BIT;
        }
        if self.of {
            v |= Self::OF_BIT;
        }
        v
    }

    /// Unpacks an RFLAGS-style value; unknown bits are ignored.
    pub fn from_bits(bits: u64) -> Flags {
        Flags {
            cf: bits & Self::CF_BIT != 0,
            zf: bits & Self::ZF_BIT != 0,
            sf: bits & Self::SF_BIT != 0,
            of: bits & Self::OF_BIT != 0,
        }
    }
}

/// Size in bytes of the [`XSaveArea`] binary image.
///
/// Mirrors the 512-byte FXSAVE legacy region of x86-64: 16 XMM registers at
/// offset 160 (the real FXSAVE layout places XMM0 at byte 160) preceded by a
/// header that we use for the MXCSR-like control word.
pub const XSAVE_AREA_SIZE: usize = 512;

const XMM_OFFSET: usize = 160;

/// XSAVE/FXSAVE-style extended state: the sixteen XMM registers plus a
/// control-word header, stored in a fixed 512-byte binary layout.
///
/// `pinball2elf` packs one of these per thread into the ELFie context data
/// section; the generated startup code restores it with an
/// `FXRSTOR`/`XRSTOR` instruction exactly as the paper describes.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct XSaveArea {
    /// MXCSR-like control/status word (offset 24 in the binary image).
    pub mxcsr: u32,
    /// XMM register file; each register is 16 bytes.
    pub xmm: [[u8; 16]; Xmm::COUNT],
}

impl Default for XSaveArea {
    fn default() -> Self {
        XSaveArea {
            // Default x86 MXCSR after reset.
            mxcsr: 0x1f80,
            xmm: [[0u8; 16]; Xmm::COUNT],
        }
    }
}

impl XSaveArea {
    /// Creates a cleared save area with the architectural default MXCSR.
    pub fn new() -> XSaveArea {
        XSaveArea::default()
    }

    /// Reads XMM register `r` as a little-endian `f64` (scalar-double view
    /// of the low lane).
    pub fn read_f64(&self, r: Xmm) -> f64 {
        f64::from_le_bytes(self.xmm[r.index()][..8].try_into().expect("8 bytes"))
    }

    /// Writes the low lane of XMM register `r` as a little-endian `f64`,
    /// zeroing the upper lane (matching `movsd` to a register on x86).
    pub fn write_f64(&mut self, r: Xmm, v: f64) {
        let lane = &mut self.xmm[r.index()];
        lane[..8].copy_from_slice(&v.to_le_bytes());
        lane[8..].fill(0);
    }

    /// Reads the low 64 bits of XMM register `r`.
    pub fn read_u64(&self, r: Xmm) -> u64 {
        u64::from_le_bytes(self.xmm[r.index()][..8].try_into().expect("8 bytes"))
    }

    /// Writes the low 64 bits of XMM register `r`, zeroing the upper lane.
    pub fn write_u64(&mut self, r: Xmm, v: u64) {
        let lane = &mut self.xmm[r.index()];
        lane[..8].copy_from_slice(&v.to_le_bytes());
        lane[8..].fill(0);
    }

    /// Serialises the save area to its fixed 512-byte FXSAVE-style image.
    pub fn to_bytes(&self) -> [u8; XSAVE_AREA_SIZE] {
        let mut buf = [0u8; XSAVE_AREA_SIZE];
        buf[24..28].copy_from_slice(&self.mxcsr.to_le_bytes());
        for (i, lane) in self.xmm.iter().enumerate() {
            let off = XMM_OFFSET + i * 16;
            buf[off..off + 16].copy_from_slice(lane);
        }
        buf
    }

    /// Deserialises a 512-byte FXSAVE-style image.
    pub fn from_bytes(buf: &[u8; XSAVE_AREA_SIZE]) -> XSaveArea {
        let mut area = XSaveArea::new();
        area.mxcsr = u32::from_le_bytes(buf[24..28].try_into().expect("4 bytes"));
        for i in 0..Xmm::COUNT {
            let off = XMM_OFFSET + i * 16;
            area.xmm[i].copy_from_slice(&buf[off..off + 16]);
        }
        area
    }
}

/// The complete per-thread architectural register file.
///
/// This is the unit of state a pinball `.reg` file stores per thread, and
/// the unit the ELFie startup code must reconstruct before jumping to
/// application code.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct RegFile {
    /// General purpose registers, indexed by [`Reg::index`].
    pub gpr: [u64; 16],
    /// Instruction pointer.
    pub rip: u64,
    /// Flags register.
    pub flags: Flags,
    /// `FS` segment base (thread-local storage pointer).
    pub fs_base: u64,
    /// `GS` segment base.
    pub gs_base: u64,
    /// Extended (XSAVE) state.
    pub xsave: XSaveArea,
}

impl Default for RegFile {
    fn default() -> Self {
        RegFile {
            gpr: [0; 16],
            rip: 0,
            flags: Flags::default(),
            fs_base: 0,
            gs_base: 0,
            xsave: XSaveArea::new(),
        }
    }
}

impl RegFile {
    /// Creates a zeroed register file.
    pub fn new() -> RegFile {
        RegFile::default()
    }

    /// Reads general purpose register `r`.
    #[inline]
    pub fn read(&self, r: Reg) -> u64 {
        self.gpr[r.index()]
    }

    /// Writes general purpose register `r`.
    #[inline]
    pub fn write(&mut self, r: Reg, v: u64) {
        self.gpr[r.index()] = v;
    }

    /// The stack pointer (`RSP`).
    #[inline]
    pub fn rsp(&self) -> u64 {
        self.read(Reg::Rsp)
    }

    /// Sets the stack pointer (`RSP`).
    #[inline]
    pub fn set_rsp(&mut self, v: u64) {
        self.write(Reg::Rsp, v);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_roundtrips_through_index() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), Some(r));
            assert_eq!(Reg::parse(r.name()), Some(r));
            assert_eq!(Reg::parse(&r.name().to_ascii_uppercase()), Some(r));
        }
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::parse("rxx"), None);
    }

    #[test]
    fn xmm_roundtrips() {
        for i in 0..16u8 {
            let x = Xmm::from_index(i).expect("valid index");
            assert_eq!(Xmm::parse(&x.to_string()), Some(x));
        }
        assert_eq!(Xmm::from_index(16), None);
        assert_eq!(Xmm::parse("xmm16"), None);
        assert_eq!(Xmm::parse("ymm0"), None);
    }

    #[test]
    fn flags_pack_like_rflags() {
        let f = Flags {
            cf: true,
            zf: true,
            sf: false,
            of: true,
        };
        let bits = f.to_bits();
        assert_eq!(bits & 1, 1, "CF is bit 0");
        assert_eq!((bits >> 6) & 1, 1, "ZF is bit 6");
        assert_eq!((bits >> 7) & 1, 0, "SF clear");
        assert_eq!((bits >> 11) & 1, 1, "OF is bit 11");
        assert_eq!((bits >> 1) & 1, 1, "bit 1 always set");
        assert_eq!(Flags::from_bits(bits), f);
    }

    #[test]
    fn flags_roundtrip_all_combinations() {
        for mask in 0..16u8 {
            let f = Flags {
                cf: mask & 1 != 0,
                zf: mask & 2 != 0,
                sf: mask & 4 != 0,
                of: mask & 8 != 0,
            };
            assert_eq!(Flags::from_bits(f.to_bits()), f);
        }
    }

    #[test]
    fn xsave_f64_roundtrip_zeroes_upper_lane() {
        let mut a = XSaveArea::new();
        a.xmm[3] = [0xff; 16];
        a.write_f64(Xmm(3), 2.5);
        assert_eq!(a.read_f64(Xmm(3)), 2.5);
        assert_eq!(a.xmm[3][8..], [0u8; 8]);
    }

    #[test]
    fn xsave_binary_roundtrip() {
        let mut a = XSaveArea::new();
        a.mxcsr = 0xabcd;
        for i in 0..16 {
            a.write_u64(Xmm(i as u8), 0x1111_0000 + i as u64);
        }
        let bytes = a.to_bytes();
        // XMM0 lives at the real FXSAVE offset.
        assert_eq!(
            u64::from_le_bytes(bytes[160..168].try_into().unwrap()),
            0x1111_0000
        );
        assert_eq!(XSaveArea::from_bytes(&bytes), a);
    }

    #[test]
    fn regfile_read_write() {
        let mut rf = RegFile::new();
        rf.write(Reg::R13, 42);
        assert_eq!(rf.read(Reg::R13), 42);
        rf.set_rsp(0x7fff_0000);
        assert_eq!(rf.rsp(), 0x7fff_0000);
    }
}
