//! The "Debugging ELFies" workflow (paper Section II-B5): application
//! pages are not visible until startup has remapped them, so the suggested
//! recipe is to break on `elfie_on_start` first and only then set
//! breakpoints at application addresses. The `.t<N>.<object>` symbols let
//! a debugger inspect the packed initial thread state.

use elfie_isa::{assemble, Reg};
use elfie_pinball::RegionTrigger;
use elfie_pinball2elf::{convert, ConvertOptions};
use elfie_pinplay::{Logger, LoggerConfig};
use elfie_vm::{ExitReason, Machine, MachineConfig, StopWhen};

fn captured_pinball() -> elfie_pinball::Pinball {
    let prog = assemble(
        r#"
        .org 0x400000
        start:
            mov rcx, 0
        loop:
            add rcx, 1
            cmp rcx, 100000
            jne loop
            mov rax, 231
            mov rdi, 0
            syscall
        "#,
    )
    .expect("assembles");
    Logger::new(LoggerConfig::fat(
        "dbg",
        RegionTrigger::GlobalIcount(1000),
        5000,
    ))
    .capture(&prog, |_| {})
    .expect("captures")
}

#[test]
fn app_pages_invisible_before_elfie_on_start() {
    let pb = captured_pinball();
    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    let file = elfie_elf::ElfFile::parse(&elfie.bytes).expect("parses");

    let on_start = file.symbol("elfie_on_start").expect("symbol exists");
    let app_pc = file.symbol(".t0.start").expect("captured rip symbol");

    let mut m = Machine::new(MachineConfig::default());
    elfie_elf::load(&mut m, &elfie.bytes, &elfie_elf::LoaderConfig::default()).expect("loads");

    // Right after loading, the application page is NOT mapped (sections
    // are non-allocatable) — gdb "cannot see" it.
    assert!(
        !m.mem.is_mapped(app_pc),
        "application page must not be mapped before startup remaps it"
    );

    // "Break on elfie_on_start": run to that address.
    m.stop_conditions = vec![StopWhen::PcCount {
        pc: on_start,
        count: 1,
    }];
    let s = m.run(100_000_000);
    assert_eq!(s.reason, ExitReason::StopCondition(0));

    // "At which point all application pages are guaranteed to be in
    // memory" — now the app breakpoint works.
    assert!(m.mem.is_mapped(app_pc), "remap completed by elfie_on_start");
    m.stop_conditions = vec![StopWhen::PcCount {
        pc: app_pc,
        count: 1,
    }];
    let s2 = m.run(100_000_000);
    assert_eq!(s2.reason, ExitReason::StopCondition(0));
    // Stopped exactly past the captured region-start instruction.
    assert!(m.threads[0].regs.rip >= app_pc);
}

#[test]
fn thread_state_symbols_point_at_packed_context() {
    let pb = captured_pinball();
    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    let file = elfie_elf::ElfFile::parse(&elfie.bytes).expect("parses");

    let mut m = Machine::new(MachineConfig::default());
    elfie_elf::load(&mut m, &elfie.bytes, &elfie_elf::LoaderConfig::default()).expect("loads");

    // A debugger reading memory at `.t0.rcx` sees the captured initial
    // value of RCX (the context data section is loaded from the start).
    let rcx_slot = file.symbol(".t0.rcx").expect("slot symbol");
    let captured_rcx = pb.threads[0].regs.gpr[Reg::Rcx.index()];
    assert_eq!(m.mem.read_u64(rcx_slot).expect("mapped"), captured_rcx);

    let flags_slot = file.symbol(".t0.rflags").expect("flags symbol");
    assert_eq!(
        m.mem.read_u64(flags_slot).expect("mapped"),
        pb.threads[0].regs.rflags
    );

    // The xmm slots live at FXSAVE offsets inside the ext area.
    let ext = file.symbol(".t0.ext_area").expect("ext symbol");
    let xmm0 = file.symbol(".t0.xmm0").expect("xmm symbol");
    assert_eq!(xmm0, ext + 160, "FXSAVE layout: XMM0 at +160");
}

#[test]
fn per_thread_icount_symbols_match_region() {
    let pb = captured_pinball();
    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    let file = elfie_elf::ElfFile::parse(&elfie.bytes).expect("parses");
    assert_eq!(file.symbol("elfie.nthreads"), Some(1));
    assert_eq!(
        file.symbol("elfie.icount.0"),
        Some(pb.region.thread_icounts[&0])
    );
    assert_eq!(file.symbol("elfie.global_icount"), Some(pb.region.length));
}
