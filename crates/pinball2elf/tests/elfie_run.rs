//! End-to-end tests for the full tool-chain: program → PinPlay logger →
//! fat pinball → pinball2elf → ELFie → native execution on the guest
//! machine via the emulated system ELF loader.

use elfie_isa::{assemble, MarkerKind, Reg};
use elfie_pinball::RegionTrigger;
use elfie_pinball2elf::{
    convert, ConvertError, ConvertOptions, TAG_ON_EXIT, TAG_ON_START, TAG_ON_THREAD_START,
};
use elfie_pinplay::{Logger, LoggerConfig, ReplayConfig, Replayer};
use elfie_sysstate::SysState;
use elfie_vm::{ExitReason, Machine, MachineConfig, Observer, RunSummary};

/// Observer that records every marker fired.
#[derive(Debug, Default)]
struct MarkerLog {
    markers: Vec<(u32, MarkerKind, u32)>,
}

impl Observer for MarkerLog {
    fn on_marker(&mut self, tid: u32, kind: MarkerKind, tag: u32) {
        self.markers.push((tid, kind, tag));
    }
}

/// Loads and runs an ELFie image on a fresh machine.
fn run_elfie(
    elf_bytes: &[u8],
    sysstate: Option<&SysState>,
    seed: u64,
) -> (Machine<MarkerLog>, RunSummary) {
    let cfg = MachineConfig {
        seed,
        ..MachineConfig::default()
    };
    let mut m = Machine::with_observer(cfg, MarkerLog::default());
    if let Some(st) = sysstate {
        st.stage_files(&mut m);
    }
    let loader_cfg = elfie_elf::LoaderConfig {
        seed,
        ..elfie_elf::LoaderConfig::default()
    };
    elfie_elf::load(&mut m, elf_bytes, &loader_cfg).expect("ELFie loads");
    let s = m.run(50_000_000);
    (m, s)
}

fn counter_program(iters: u64) -> elfie_isa::Program {
    assemble(&format!(
        r#"
        .org 0x400000
        start:
            mov rcx, 0
            mov rbx, cell
        loop:
            add rcx, 1
            mov [rbx], rcx
            cmp rcx, {iters}
            jne loop
            mov rax, 231
            mov rdi, 0
            syscall
        .org 0x600000
        cell: .quad 0
        "#
    ))
    .expect("assembles")
}

#[test]
fn single_thread_elfie_matches_constrained_replay() {
    let prog = counter_program(100_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(1000),
        4000,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");

    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    let (machine, summary) = run_elfie(&elfie.bytes, None, 7);
    assert_eq!(summary.reason, ExitReason::AllExited(0), "graceful exit");

    // The region has no system calls, so the ELFie must end in *exactly*
    // the state constrained replay ends in.
    let (_, replay_machine) = Replayer::new(ReplayConfig::default()).replay_full(&pb, |_| {});
    assert_eq!(
        machine.threads[0].regs.read(Reg::Rcx),
        replay_machine.threads[0].regs.read(Reg::Rcx),
        "ELFie executed the same region as replay"
    );
    // Memory state matches too.
    assert_eq!(
        machine.mem.read_u64(0x600000).unwrap(),
        replay_machine.mem.read_u64(0x600000).unwrap()
    );
}

#[test]
fn elfie_starts_with_captured_register_state() {
    // Capture mid-loop: rcx has a definite value at region start; the
    // ELFie must begin from exactly that state.
    let prog = counter_program(100_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(402),
        40,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let captured_rcx = pb.threads[0].regs.gpr[Reg::Rcx.index()];
    assert!(captured_rcx > 0, "captured mid-loop");

    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    let (machine, summary) = run_elfie(&elfie.bytes, None, 3);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    // 40 region instructions = 10 loop iterations (4 insns each).
    let final_rcx = machine.threads[0].regs.read(Reg::Rcx);
    assert_eq!(final_rcx, captured_rcx + 10);
}

#[test]
fn elfie_runs_identically_across_seeds_for_single_thread() {
    let prog = counter_program(100_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(1000),
        2000,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    let (m1, _) = run_elfie(&elfie.bytes, None, 11);
    let (m2, _) = run_elfie(&elfie.bytes, None, 99);
    assert_eq!(
        m1.threads[0].regs.read(Reg::Rcx),
        m2.threads[0].regs.read(Reg::Rcx),
        "single-threaded ELFie is repeatable despite stack randomisation"
    );
}

#[test]
fn callbacks_and_roi_markers_fire_in_order() {
    let prog = counter_program(10_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(500),
        1000,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        roi_marker: Some((MarkerKind::Sniper, 42)),
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    let (machine, summary) = run_elfie(&elfie.bytes, None, 1);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    let tags: Vec<u32> = machine.obs.markers.iter().map(|(_, _, t)| *t).collect();
    assert_eq!(tags, vec![TAG_ON_START, TAG_ON_THREAD_START, 42]);
    let kinds: Vec<MarkerKind> = machine.obs.markers.iter().map(|(_, k, _)| *k).collect();
    assert_eq!(kinds[2], MarkerKind::Sniper);
}

#[test]
fn graceful_exit_runs_exact_region_length() {
    let prog = counter_program(100_000);
    let region_len = 2000u64;
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(1000),
        region_len,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        callbacks: false,
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    let (machine, summary) = run_elfie(&elfie.bytes, None, 1);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    // Thread icount = startup instructions + armed target; the counter was
    // armed to fire after (region + post-arm overhead) instructions.
    let t = &machine.threads[0];
    assert!(t.exit_counter.fired, "exit came from the armed counter");
    assert!(t.icount as i64 - region_len as i64 >= 0);
}

#[test]
fn without_graceful_exit_elfie_overruns_region() {
    // "At times an ELFie may continue to execute far beyond the desired
    // number of instructions" — without the counter, our counter program
    // just keeps looping until its own exit.
    let prog = counter_program(50_000);
    let region_len = 1000u64;
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(1000),
        region_len,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        graceful_exit: false,
        callbacks: false,
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    let (machine, summary) = run_elfie(&elfie.bytes, None, 1);
    // The program continues to its own exit_group — far beyond the region.
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    assert!(
        machine.threads[0].icount > 10 * region_len,
        "ran {} instructions, region was {region_len}",
        machine.threads[0].icount
    );
}

#[test]
fn sysstate_makes_file_reads_work() {
    // File opened BEFORE the region, read inside it: the canonical
    // system-call challenge from Section I-A.
    let prog = assemble(
        r#"
        .org 0x400000
        start:
            mov rax, 2          ; open("/data")
            mov rdi, path
            mov rsi, 0
            syscall
            mov r12, rax
            mov rax, 0          ; read(fd, buf, 8) -- region starts here
            mov rdi, r12
            mov rsi, buf
            mov rdx, 8
            syscall
            mov rbx, [buf]
            mov rax, 231
            mov rdi, 0
            syscall
        path: .asciz "/data"
        .org 0x600000
        buf: .quad 0
        "#,
    )
    .expect("assembles");
    let logger = Logger::new(LoggerConfig::fat(
        "file",
        RegionTrigger::GlobalIcount(5),
        200,
    ));
    let pb = logger
        .capture(&prog, |m| {
            m.kernel
                .fs
                .put("/data", 0xfeed_f00d_u64.to_le_bytes().to_vec());
        })
        .expect("captures");

    let sysstate = SysState::extract(&pb);
    assert!(!sysstate.fd_files.is_empty(), "FD proxy extracted");
    let opts = ConvertOptions {
        sysstate: Some(sysstate.clone()),
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");

    // Run WITHOUT /data on the machine: only the sysstate proxies staged.
    let (machine, summary) = run_elfie(&elfie.bytes, Some(&sysstate), 5);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    assert_eq!(machine.threads[0].regs.read(Reg::Rbx), 0xfeed_f00d);
}

#[test]
fn without_sysstate_file_read_fails() {
    let prog = assemble(
        r#"
        .org 0x400000
        start:
            mov rax, 2
            mov rdi, path
            mov rsi, 0
            syscall
            mov r12, rax
            mov rax, 0
            mov rdi, r12
            mov rsi, buf
            mov rdx, 8
            syscall
            mov rbx, [buf]
            mov rax, 231
            mov rdi, 0
            syscall
        path: .asciz "/data"
        .org 0x600000
        buf: .quad 0
        "#,
    )
    .expect("assembles");
    let logger = Logger::new(LoggerConfig::fat(
        "file",
        RegionTrigger::GlobalIcount(5),
        200,
    ));
    let pb = logger
        .capture(&prog, |m| {
            m.kernel
                .fs
                .put("/data", 0xfeed_f00d_u64.to_le_bytes().to_vec());
        })
        .expect("captures");
    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    let (machine, _summary) = run_elfie(&elfie.bytes, None, 5);
    assert_ne!(
        machine.threads[0].regs.read(Reg::Rbx),
        0xfeed_f00d,
        "the re-executed read fails without sysstate (EBADF)"
    );
}

fn two_thread_program() -> elfie_isa::Program {
    assemble(
        r#"
        .org 0x400000
        start:
            mov rax, 56
            mov rdi, 0
            mov rsi, 0x7f00200000
            syscall
            cmp rax, 0
            je child
        parent_work:
            mov rcx, 500
        ploop:
            mov rdx, 1
            mov rbx, shared
            xadd [rbx], rdx
            sub rcx, 1
            cmp rcx, 0
            jne ploop
        pwait:
            mov rdx, [done]
            cmp rdx, 1
            jne pwait
            mov rax, 231
            mov rdi, 0
            syscall
        child:
            mov rcx, 500
        cloop:
            mov rdx, 1
            mov rbx, shared
            xadd [rbx], rdx
            sub rcx, 1
            cmp rcx, 0
            jne cloop
            mov rdx, 1
            mov rbx, done
            mov [rbx], rdx
            mov rax, 60
            mov rdi, 0
            syscall
        .org 0x600000
        shared: .quad 0
        done: .quad 0
        "#,
    )
    .expect("assembles")
}

#[test]
fn multithreaded_elfie_creates_and_exits_all_threads() {
    let prog = two_thread_program();
    let logger = Logger::new(LoggerConfig::fat(
        "mt",
        RegionTrigger::GlobalIcount(60),
        1500,
    ));
    let pb = logger
        .capture(&prog, |m| {
            m.mem
                .map_range(0x7f001f0000, 0x7f00200000, elfie_vm::Perm::RW)
                .unwrap();
        })
        .expect("captures");
    assert_eq!(pb.threads.len(), 2);

    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");
    assert_eq!(elfie.stats.threads, 2);
    let (machine, summary) = run_elfie(&elfie.bytes, None, 13);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    assert_eq!(machine.threads.len(), 2, "startup cloned the second thread");
    // Both threads ran at least their recorded region share.
    for (tid, &target) in &pb.region.thread_icounts {
        let t = &machine.threads[*tid as usize];
        assert!(
            t.icount >= target,
            "tid {tid} ran {} < target {target}",
            t.icount
        );
    }
}

#[test]
fn regular_pinball_is_rejected_then_fails_when_forced() {
    let prog = counter_program(100_000);
    let logger = Logger::new(LoggerConfig::regular(
        "ctr",
        RegionTrigger::GlobalIcount(1000),
        4000,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    // Default conversion refuses regular pinballs.
    match convert(&pb, &ConvertOptions::default()) {
        Err(ConvertError::NotFat) => {}
        other => panic!("expected NotFat, got {other:?}"),
    }
    // Forced conversion produces an ELFie that dies on an un-captured page.
    let opts = ConvertOptions {
        force_regular: true,
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("forced conversion");
    let (_machine, summary) = run_elfie(&elfie.bytes, None, 1);
    match summary.reason {
        ExitReason::Fault { .. } => {}
        other => panic!("expected ungraceful exit, got {other:?}"),
    }
}

#[test]
fn monitor_thread_fires_on_exit_marker() {
    let prog = counter_program(10_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(500),
        800,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        monitor_thread: true,
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    let (machine, summary) = run_elfie(&elfie.bytes, None, 1);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    assert_eq!(machine.threads.len(), 2, "monitor + app thread");
    let tags: Vec<u32> = machine.obs.markers.iter().map(|(_, _, t)| *t).collect();
    assert!(tags.contains(&TAG_ON_EXIT), "elfie_on_exit fired: {tags:?}");
    // on_exit is the last marker.
    assert_eq!(*tags.last().unwrap(), TAG_ON_EXIT);
}

#[test]
fn thread_prologue_is_executed() {
    let prog = counter_program(10_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(500),
        800,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        thread_prologue_asm: Some("marker simics, 777".to_string()),
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    let (machine, summary) = run_elfie(&elfie.bytes, None, 1);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    assert!(machine
        .obs
        .markers
        .iter()
        .any(|(_, k, t)| *k == MarkerKind::Simics && *t == 777));
}

#[test]
fn elfie_symbols_and_linker_script() {
    let prog = counter_program(10_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(500),
        800,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let elfie = convert(&pb, &ConvertOptions::default()).expect("converts");

    let file = elfie_elf::ElfFile::parse(&elfie.bytes).expect("parses");
    assert!(file.symbol("elfie_start").is_some());
    assert!(file.symbol("elfie_on_start").is_some());
    assert!(file.symbol("elfie_on_thread_start").is_some());
    assert!(file.symbol(".t0.rax").is_some());
    assert!(file.symbol(".t0.xmm0").is_some());
    assert!(file.symbol(".t0.rsp").is_some());
    assert_eq!(file.symbol("elfie.nthreads"), Some(1));
    assert_eq!(file.symbol("elfie.global_icount"), Some(800));
    assert_eq!(file.symbol(".t0.start"), Some(pb.threads[0].regs.rip));

    assert!(elfie.linker_script.contains("SECTIONS"));
    assert!(elfie.linker_script.contains(".text.startup"));
    assert!(elfie.startup_asm.contains("elfie_start:"));

    // The ELFie memory layout mirrors the pinball: every captured page is
    // present as a section at its original address.
    for run in pb.image.consecutive_runs() {
        assert!(
            file.sections.iter().any(|s| s.addr == run.start),
            "no section at {:#x}",
            run.start
        );
    }
}

#[test]
fn object_only_output_is_relocatable() {
    let prog = counter_program(10_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(500),
        800,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        object_only: true,
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    let file = elfie_elf::ElfFile::parse(&elfie.bytes).expect("parses");
    assert_eq!(file.etype, elfie_elf::ET_REL);
    assert!(file.symbol(".t0.start").is_some());
    assert_eq!(elfie.stats.startup_bytes, 0);
}

#[test]
fn stack_only_remap_mode_works_for_low_image() {
    let prog = counter_program(50_000);
    let logger = Logger::new(LoggerConfig::fat(
        "ctr",
        RegionTrigger::GlobalIcount(1000),
        1500,
    ));
    let pb = logger.capture(&prog, |_| {}).expect("captures");
    let opts = ConvertOptions {
        remap: elfie_pinball2elf::RemapMode::StackOnly,
        ..ConvertOptions::default()
    };
    let elfie = convert(&pb, &opts).expect("converts");
    assert!(elfie.stats.remapped_runs < elfie.stats.app_runs);
    let (machine, summary) = run_elfie(&elfie.bytes, None, 21);
    assert_eq!(summary.reason, ExitReason::AllExited(0));
    assert!(machine.threads[0].exit_counter.fired);
}
