//! Tests for the pinball → PE conversion (the paper's imagined
//! Windows-side `pinball2pe`).

use elfie_isa::assemble;
use elfie_pinball::RegionTrigger;
use elfie_pinball2elf::pe::{convert_pe, read_remap_table, PeFile, PE_MACHINE_ELFIE};
use elfie_pinplay::{Logger, LoggerConfig};

fn captured_pinball() -> elfie_pinball::Pinball {
    let prog = assemble(
        r#"
        .org 0x400000
        start:
            mov rcx, 0
            mov rbx, cell
        loop:
            add rcx, 1
            mov [rbx], rcx
            cmp rcx, 50000
            jne loop
            mov rax, 231
            mov rdi, 0
            syscall
        .org 0x600000
        cell: .quad 0
        "#,
    )
    .expect("assembles");
    Logger::new(LoggerConfig::fat(
        "pe",
        RegionTrigger::GlobalIcount(1000),
        4000,
    ))
    .capture(&prog, |_| {})
    .expect("captures")
}

#[test]
fn pinball_converts_to_valid_pe32_plus() {
    let pb = captured_pinball();
    let bytes = convert_pe(&pb).expect("converts");
    assert_eq!(&bytes[0..2], b"MZ");
    let pe = PeFile::parse(&bytes).expect("parses");
    assert_eq!(pe.machine, PE_MACHINE_ELFIE);
    // One section per page run, plus .pbmeta and .pbctx.
    let runs = pb.image.consecutive_runs().len();
    assert_eq!(pe.sections.len(), runs + 2);
    assert!(pe.section(".pbmeta").is_some());
    assert!(pe.section(".pbctx").is_some());
}

#[test]
fn remap_table_reconstructs_original_layout() {
    let pb = captured_pinball();
    let bytes = convert_pe(&pb).expect("converts");
    let pe = PeFile::parse(&bytes).expect("parses");
    let table = read_remap_table(&pe).expect("meta table");
    let runs = pb.image.consecutive_runs();
    assert_eq!(table.len(), runs.len());
    for (entry, run) in table.iter().zip(&runs) {
        assert_eq!(entry.original_va, run.start, "original VA preserved");
        assert_eq!(entry.len, run.byte_len());
        assert_eq!(entry.perm, run.perm);
        // The packed section contents at that RVA are the original bytes.
        let sec = pe
            .sections
            .iter()
            .find(|s| s.rva == entry.rva)
            .expect("section at rva");
        assert_eq!(sec.data, run.concat(), "page contents preserved");
    }
    // Code page at 0x400000 and data page at 0x600000 both make it across.
    assert!(table.iter().any(|e| e.original_va == 0x400000));
    assert!(table.iter().any(|e| e.original_va == 0x600000));
}

#[test]
fn pbctx_carries_thread_state() {
    let pb = captured_pinball();
    let bytes = convert_pe(&pb).expect("converts");
    let pe = PeFile::parse(&bytes).expect("parses");
    let ctx = &pe.section(".pbctx").expect("ctx").data;
    let nthreads = u64::from_le_bytes(ctx[..8].try_into().unwrap());
    assert_eq!(nthreads, 1);
    let rip = u64::from_le_bytes(ctx[16..24].try_into().unwrap());
    assert_eq!(rip, pb.threads[0].regs.rip, "captured RIP serialised");
}

#[test]
fn regular_pinball_rejected() {
    let prog = assemble(".org 0x400000\nstart: jmp start\n").unwrap();
    let pb = Logger::new(LoggerConfig::regular(
        "r",
        RegionTrigger::GlobalIcount(10),
        50,
    ))
    .capture(&prog, |_| {})
    .expect("captures");
    assert!(convert_pe(&pb).is_err());
}
