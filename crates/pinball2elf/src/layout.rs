//! Address-space layout decisions for a generated ELFie: where the
//! startup code, the packed thread contexts and the shadow copies of
//! pinball pages live.
//!
//! The thread-context data section must sit "in some memory range that is
//! not used by the pinball" (paper Section II-B2). We additionally keep it
//! below 2 GiB so the startup code can use absolute 32-bit displacement
//! addressing for `FXRSTOR`/`JMP [slot]`.

use elfie_isa::{page_align_up, PAGE_SIZE};
use elfie_pinball::Pinball;

/// Per-thread context block layout (offsets in bytes).
pub mod ctx {
    /// FXSAVE image.
    pub const XSAVE: u64 = 0;
    /// FS base slot.
    pub const FS: u64 = 512;
    /// GS base slot.
    pub const GS: u64 = 520;
    /// Real stack-pointer slot.
    pub const RSP: u64 = 528;
    /// Real instruction-pointer slot.
    pub const RIP: u64 = 536;
    /// Pop area: flags, 15 GPRs (r15..rax, rsp excluded), thread-entry
    /// pointer.
    pub const POP: u64 = 544;
    /// Pop area length: 17 quadwords.
    pub const POP_QUADS: usize = 17;
    /// Total block size (64-byte aligned).
    pub const SIZE: u64 = 704;
}

/// The pop order of general purpose registers in the thread-init function
/// (after `popfq`, before `ret`). `RSP` is excluded — it is restored from
/// the context slot by the thread entry.
pub const POP_ORDER: [elfie_isa::Reg; 15] = {
    use elfie_isa::Reg::*;
    [
        R15, R14, R13, R12, R11, R10, R9, R8, Rdi, Rsi, Rbp, Rbx, Rdx, Rcx, Rax,
    ]
};

/// Chosen addresses for the generated pieces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Layout {
    /// Base of the startup code section (`.text.startup`).
    pub startup_base: u64,
    /// Base of the context/data section (`.data.elfie`).
    pub ctx_base: u64,
    /// Base address where shadow copies of remapped pinball pages are
    /// placed.
    pub shadow_base: u64,
}

/// Errors choosing a layout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayoutError {
    /// No free low-address (< 2 GiB) range large enough for startup code
    /// and contexts.
    NoLowAddressSpace,
}

impl std::fmt::Display for LayoutError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LayoutError::NoLowAddressSpace => {
                write!(
                    f,
                    "no free address range below 2 GiB for startup code and contexts"
                )
            }
        }
    }
}

impl std::error::Error for LayoutError {}

/// Reserved size for the startup code region.
pub const STARTUP_RESERVE: u64 = 512 * 1024;
/// Reserved size for the context/data region (contexts, strings, scratch).
pub const CTX_RESERVE: u64 = 256 * 1024;

const LOW_SEARCH_START: u64 = 0x0100_0000;
const LOW_SEARCH_END: u64 = 0x7000_0000;

/// Finds a gap of `len` bytes in `[start, end)` not covered by pinball
/// pages.
fn find_gap(pinball: &Pinball, start: u64, end: u64, len: u64) -> Option<u64> {
    let len = page_align_up(len);
    let mut candidate = start;
    'outer: while candidate + len <= end {
        // Any pinball page (image or lazy) within [candidate, candidate+len)?
        let hit = pinball
            .image
            .pages
            .range(candidate..candidate + len)
            .next()
            .map(|(&a, _)| a)
            .or_else(|| {
                pinball
                    .lazy_pages
                    .range(candidate..candidate + len)
                    .next()
                    .map(|(&a, _)| a)
            });
        match hit {
            Some(a) => {
                candidate = a + PAGE_SIZE;
                continue 'outer;
            }
            None => return Some(candidate),
        }
    }
    None
}

/// Chooses a layout for the given pinball.
///
/// # Errors
/// Returns [`LayoutError::NoLowAddressSpace`] when the pinball's pages
/// cover all of the low 2 GiB.
pub fn choose(pinball: &Pinball, shadow_bytes: u64) -> Result<Layout, LayoutError> {
    let need = STARTUP_RESERVE + CTX_RESERVE;
    let base = find_gap(pinball, LOW_SEARCH_START, LOW_SEARCH_END, need)
        .ok_or(LayoutError::NoLowAddressSpace)?;
    // Shadow copies can live anywhere unused; search above the low region
    // first, falling back to a high range.
    let shadow_len = page_align_up(shadow_bytes.max(PAGE_SIZE));
    let shadow_base = find_gap(pinball, base + need, LOW_SEARCH_END, shadow_len)
        .or_else(|| find_gap(pinball, 0x5000_0000_0000, 0x6000_0000_0000, shadow_len))
        .ok_or(LayoutError::NoLowAddressSpace)?;
    Ok(Layout {
        startup_base: base,
        ctx_base: base + STARTUP_RESERVE,
        shadow_base,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use elfie_pinball::{MemoryImage, PageRecord, PinballMeta, RaceLog, RegionInfo, RegionTrigger};
    use std::collections::BTreeMap;

    fn pinball_with_pages(addrs: &[u64]) -> Pinball {
        let mut image = MemoryImage::new();
        for &a in addrs {
            image
                .pages
                .insert(a, PageRecord::new(7, &[0u8; PAGE_SIZE as usize]));
        }
        Pinball {
            meta: PinballMeta {
                name: "t".into(),
                fat: true,
                arch: "elfie-isa-v1".into(),
                brk: 0,
                brk_start: 0,
                cwd: "/".into(),
            },
            region: RegionInfo {
                name: "t.0".into(),
                trigger: RegionTrigger::ProgramStart,
                length: 0,
                thread_icounts: BTreeMap::new(),
                warmup: 0,
                weight: 1.0,
                slice_index: 0,
            },
            image,
            threads: vec![],
            races: RaceLog::default(),
            lazy_pages: BTreeMap::new(),
        }
    }

    #[test]
    fn layout_avoids_pinball_pages() {
        let pb = pinball_with_pages(&[0x0100_0000, 0x0100_1000, 0x0200_0000]);
        let l = choose(&pb, 0x10_000).expect("layout found");
        let regions = [
            (l.startup_base, l.startup_base + STARTUP_RESERVE),
            (l.ctx_base, l.ctx_base + CTX_RESERVE),
            (l.shadow_base, l.shadow_base + 0x10_000),
        ];
        for (lo, hi) in regions {
            for &page in pb.image.pages.keys() {
                assert!(
                    page + PAGE_SIZE <= lo || page >= hi,
                    "page {page:#x} in [{lo:#x},{hi:#x})"
                );
            }
        }
        assert!(l.ctx_base < 1 << 31, "contexts stay below 2 GiB");
    }

    #[test]
    fn layout_skips_densely_used_prefix() {
        // Fill the first candidate area; layout must move past it.
        let pages: Vec<u64> = (0..8).map(|i| 0x0100_0000 + i * PAGE_SIZE).collect();
        let pb = pinball_with_pages(&pages);
        let l = choose(&pb, PAGE_SIZE).expect("layout found");
        assert!(l.startup_base >= 0x0100_0000 + 8 * PAGE_SIZE);
    }

    #[test]
    fn ctx_layout_constants_consistent() {
        assert_eq!(ctx::POP, ctx::RIP + 8);
        assert!(ctx::POP + (ctx::POP_QUADS as u64) * 8 <= ctx::SIZE);
        assert_eq!(
            POP_ORDER.len() + 2,
            ctx::POP_QUADS,
            "flags + 15 GPRs + entry ptr"
        );
    }
}
