//! # elfie-pinball2elf
//!
//! The paper's primary contribution: converting a (fat) pinball into an
//! **ELFie** — a stand-alone, statically linked ELF executable that starts
//! with the exact program state captured at the beginning of a region of
//! interest and then runs natively, unconstrained.
//!
//! The conversion (paper Section II-B):
//!
//! * each run of consecutive pinball memory-image pages with identical
//!   permissions becomes an ELF section at its original virtual address,
//! * per-thread register state is packed into a context data section
//!   placed in an address range the pinball does not use,
//! * generated startup code remaps pinball pages (solving the **stack
//!   collision** by marking captured pages non-allocatable and copying
//!   them into place from shadow sections at run time), restores SYSSTATE
//!   (working directory, heap break via `prctl`, pre-opened `FD_n`
//!   descriptors), creates one thread per captured thread with `clone()`,
//!   restores each thread's full context (`FXRSTOR` + segment bases +
//!   `POPFQ` + GPR pops) and jumps to the captured code,
//! * optional features: `elfie_on_start` / `elfie_on_thread_start` /
//!   `elfie_on_exit` callback points, ROI markers for simulators
//!   (`--roi-start sniper|ssc|simics:TAG`), graceful-exit arming of
//!   per-thread retired-instruction counters, object-only output, a
//!   generated linker script, and `.t<N>.<object>` debug symbols.

pub mod layout;
pub mod pe;
pub mod startup;

use elfie_elf::{ElfBuilder, SectionSpec};
use elfie_isa::{assemble, AsmError, MarkerKind};
use elfie_pinball::{PageRun, Pinball};
use elfie_sysstate::SysState;
use startup::RemapRun;
use std::fmt;

pub use startup::{TAG_ON_EXIT, TAG_ON_START, TAG_ON_THREAD_START};

/// Which pinball pages the startup code remaps from shadow copies instead
/// of having the system loader map them directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RemapMode {
    /// Remap every pinball page ("the most portable way", and the reason
    /// gdb cannot see application pages until `elfie_on_start`).
    #[default]
    AllPages,
    /// Remap only the captured stack pages; everything else is loaded
    /// directly by the system loader. Smaller startup overhead, but
    /// assumes no other section collides with loader-managed ranges.
    StackOnly,
}

/// Conversion options.
#[derive(Debug, Clone)]
pub struct ConvertOptions {
    /// Arm per-thread retired-instruction counters so each thread exits
    /// after its recorded region instruction count (graceful exit).
    pub graceful_exit: bool,
    /// Insert a region-of-interest marker just before application code
    /// (`--roi-start TYPE:TAG`).
    pub roi_marker: Option<(MarkerKind, u32)>,
    /// Emit `elfie_on_start` / `elfie_on_thread_start` (and, with
    /// [`ConvertOptions::monitor_thread`], `elfie_on_exit`) callback
    /// markers and symbols.
    pub callbacks: bool,
    /// Create a monitor thread that spawns the application threads, waits
    /// for them to exit and fires `elfie_on_exit` (`-e` switch).
    pub monitor_thread: bool,
    /// Embed sysstate references: the startup re-creates cwd, heap break
    /// and pre-opened descriptors.
    pub sysstate: Option<SysState>,
    /// Emit a relocatable object (no startup code) instead of an
    /// executable.
    pub object_only: bool,
    /// Convert a non-fat pinball anyway (the resulting ELFie will be
    /// missing pages and fail at run time — useful for ablations).
    pub force_regular: bool,
    /// Remap strategy.
    pub remap: RemapMode,
    /// Addresses at or above this are considered stack pages.
    pub stack_threshold: u64,
    /// Extra user assembly inserted at the top of every thread entry
    /// (straight-line code only; the "link extra code at thread entry"
    /// feature).
    pub thread_prologue_asm: Option<String>,
}

impl Default for ConvertOptions {
    fn default() -> Self {
        ConvertOptions {
            graceful_exit: true,
            roi_marker: None,
            callbacks: true,
            monitor_thread: false,
            sysstate: None,
            object_only: false,
            force_regular: false,
            remap: RemapMode::default(),
            stack_threshold: 0x7000_0000_0000,
            thread_prologue_asm: None,
        }
    }
}

/// Conversion statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ConvertStats {
    /// Number of captured (non-spawned) threads.
    pub threads: usize,
    /// Number of application page runs converted to sections.
    pub app_runs: usize,
    /// Number of page runs remapped via shadows at startup.
    pub remapped_runs: usize,
    /// Total ELF image size in bytes.
    pub elf_bytes: u64,
    /// Startup code size in bytes.
    pub startup_bytes: u64,
}

/// The conversion output.
#[derive(Debug, Clone)]
pub struct Elfie {
    /// The complete ELF image.
    pub bytes: Vec<u8>,
    /// Generated linker script describing the memory layout (paper: "the
    /// linker script contains the parent pinball memory layout").
    pub linker_script: String,
    /// The generated startup assembly listing (also serves as the
    /// thread-context dump feature).
    pub startup_asm: String,
    /// Statistics.
    pub stats: ConvertStats,
}

/// Conversion errors.
#[derive(Debug)]
pub enum ConvertError {
    /// The pinball is not fat; ELFie generation needs `-log:fat` pinballs.
    NotFat,
    /// The pinball captured no threads.
    NoThreads,
    /// No free address range for startup code/contexts.
    Layout(layout::LayoutError),
    /// Generated startup failed to assemble (internal error).
    Asm(AsmError),
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::NotFat => {
                write!(
                    f,
                    "pinball is not fat; re-log with -log:fat (or set force_regular)"
                )
            }
            ConvertError::NoThreads => write!(f, "pinball captured no threads"),
            ConvertError::Layout(e) => write!(f, "layout: {e}"),
            ConvertError::Asm(e) => write!(f, "startup assembly: {e}"),
        }
    }
}

impl std::error::Error for ConvertError {}

impl From<layout::LayoutError> for ConvertError {
    fn from(e: layout::LayoutError) -> Self {
        ConvertError::Layout(e)
    }
}

impl From<AsmError> for ConvertError {
    fn from(e: AsmError) -> Self {
        ConvertError::Asm(e)
    }
}

fn section_name(prefix: &str, addr: u64) -> String {
    format!("{prefix}.{addr:x}")
}

/// Counts the instructions in a straight-line prologue snippet.
fn count_prologue_insns(prologue: &str) -> Result<u64, AsmError> {
    let prog = assemble(&format!(".org 0\nstart:\n{prologue}\n"))?;
    let mut count = 0u64;
    let mut pos = 0usize;
    let bytes = prog.bytes();
    while pos < bytes.len() {
        let (_, len) = elfie_isa::decode(&bytes[pos..]).map_err(|e| AsmError {
            line: 0,
            message: format!("prologue does not decode: {e}"),
        })?;
        pos += len;
        count += 1;
    }
    Ok(count)
}

/// Converts a pinball into an ELFie.
///
/// # Errors
///
/// Returns [`ConvertError`] when the pinball is not fat (and
/// `force_regular` is unset), has no threads, or no layout can be found.
pub fn convert(pinball: &Pinball, opts: &ConvertOptions) -> Result<Elfie, ConvertError> {
    if !pinball.meta.fat && !opts.force_regular {
        return Err(ConvertError::NotFat);
    }
    let threads: Vec<_> = pinball.threads.iter().filter(|t| !t.spawned).collect();
    if threads.is_empty() && !opts.object_only {
        return Err(ConvertError::NoThreads);
    }

    // Split the memory image into runs; decide which ones are remapped.
    let runs = pinball.image.consecutive_runs();
    let is_stack = |addr: u64| addr >= opts.stack_threshold;
    let remap_pred = |addr: u64| match opts.remap {
        RemapMode::AllPages => true,
        RemapMode::StackOnly => is_stack(addr),
    };

    if opts.object_only {
        // Object output: pinball pages as sections, no startup code.
        let mut builder = ElfBuilder::new().object();
        for run in &runs {
            let exec = run.perm & 4 != 0;
            let write = run.perm & 2 != 0;
            let prefix = if exec { ".text" } else { ".data" };
            builder = builder.section(SectionSpec::progbits(
                &section_name(prefix, run.start),
                run.start,
                run.concat(),
                write,
                exec,
            ));
        }
        builder = add_thread_symbols(builder, pinball, None);
        let bytes = builder.build();
        let stats = ConvertStats {
            threads: threads.len(),
            app_runs: runs.len(),
            remapped_runs: 0,
            elf_bytes: bytes.len() as u64,
            startup_bytes: 0,
        };
        let linker_script = linker_script(pinball, &runs, None);
        return Ok(Elfie {
            bytes,
            linker_script,
            startup_asm: String::new(),
            stats,
        });
    }

    // Assign shadow addresses for remapped runs.
    let shadow_total: u64 = runs
        .iter()
        .filter(|r| remap_pred(r.start))
        .map(|r| elfie_isa::page_align_up(r.byte_len()))
        .sum();
    let layout = layout::choose(pinball, shadow_total.max(elfie_isa::PAGE_SIZE))?;

    let mut remaps = Vec::new();
    let mut shadow_cursor = layout.shadow_base;
    for run in &runs {
        if remap_pred(run.start) {
            remaps.push(RemapRun {
                orig: run.start,
                shadow: shadow_cursor,
                len: run.byte_len(),
                perm: run.perm,
            });
            shadow_cursor += elfie_isa::page_align_up(run.byte_len());
        }
    }

    let prologue_insns = match &opts.thread_prologue_asm {
        Some(p) => count_prologue_insns(p)?,
        None => 0,
    };

    // Generate and assemble the startup + context source.
    let src = startup::generate_asm(
        pinball,
        opts,
        &layout,
        &remaps,
        opts.sysstate.as_ref(),
        prologue_insns,
    );
    let prog = assemble(&src)?;
    debug_assert_eq!(prog.chunks.len(), 2, "startup chunk + context chunk");
    let startup_chunk = &prog.chunks[0];
    let ctx_chunk = &prog.chunks[1];

    // Build the ELF image.
    let mut builder = ElfBuilder::new().entry(prog.entry);
    builder = builder.section(SectionSpec::progbits(
        ".text.startup",
        startup_chunk.addr,
        startup_chunk.bytes.clone(),
        false,
        true,
    ));
    builder = builder.section(SectionSpec::progbits(
        ".data.elfie",
        ctx_chunk.addr,
        ctx_chunk.bytes.clone(),
        true,
        false,
    ));

    let mut remap_iter = remaps.iter();
    for run in &runs {
        let exec = run.perm & 4 != 0;
        let write = run.perm & 2 != 0;
        if remap_pred(run.start) {
            let remap = remap_iter.next().expect("remap assigned");
            debug_assert_eq!(remap.orig, run.start);
            // Original content kept as a non-allocatable section (for the
            // record and for tooling), plus an allocatable shadow the
            // startup copies from.
            let prefix = if is_stack(run.start) {
                ".stack"
            } else if exec {
                ".text"
            } else {
                ".data"
            };
            let bytes = run.concat();
            builder = builder.section(
                SectionSpec::progbits(
                    &section_name(prefix, run.start),
                    run.start,
                    bytes.clone(),
                    write,
                    exec,
                )
                .non_alloc(),
            );
            builder = builder.section(SectionSpec::progbits(
                &section_name(".shadow", run.start),
                remap.shadow,
                bytes,
                false,
                false,
            ));
        } else {
            let prefix = if exec { ".text" } else { ".data" };
            builder = builder.section(SectionSpec::progbits(
                &section_name(prefix, run.start),
                run.start,
                run.concat(),
                write,
                exec,
            ));
        }
    }

    // Symbols: every startup label, per-thread register-slot symbols, and
    // ELFie metadata for tools.
    for (name, value) in &prog.symbols {
        builder = builder.symbol(name, *value);
    }
    builder = add_thread_symbols(builder, pinball, Some(&prog));
    builder = builder.symbol("elfie.nthreads", threads.len() as u64);
    builder = builder.symbol("elfie.global_icount", pinball.region.length);
    for rec in &threads {
        let icount = pinball
            .region
            .thread_icounts
            .get(&rec.tid)
            .copied()
            .unwrap_or(pinball.region.length);
        builder = builder.symbol(&format!("elfie.icount.{}", rec.tid), icount);
    }
    if let Some((kind, tag)) = opts.roi_marker {
        builder = builder.symbol(&format!("elfie.roi.{}", kind.name()), tag as u64);
    }

    let bytes = builder.build();
    let stats = ConvertStats {
        threads: threads.len(),
        app_runs: runs.len(),
        remapped_runs: remaps.len(),
        elf_bytes: bytes.len() as u64,
        startup_bytes: startup_chunk.bytes.len() as u64,
    };
    let linker_script = linker_script(pinball, &runs, Some(&layout));
    Ok(Elfie {
        bytes,
        linker_script,
        startup_asm: src,
        stats,
    })
}

fn add_thread_symbols(
    mut builder: ElfBuilder,
    pinball: &Pinball,
    prog: Option<&elfie_isa::Program>,
) -> ElfBuilder {
    for (k, rec) in pinball.threads.iter().filter(|t| !t.spawned).enumerate() {
        // Start-of-thread symbol: the captured RIP.
        builder = builder.symbol(&format!(".t{k}.start"), rec.regs.rip);
        if let Some(prog) = prog {
            if let Some(pop) = prog.symbol(&format!("t{k}_pop")) {
                builder = builder.symbol(&format!(".t{k}.rflags"), pop);
                for (i, reg) in layout::POP_ORDER.iter().enumerate() {
                    builder =
                        builder.symbol(&format!(".t{k}.{}", reg.name()), pop + 8 + i as u64 * 8);
                }
            }
            if let Some(xsave) = prog.symbol(&format!("t{k}_xsave")) {
                builder = builder.symbol(&format!(".t{k}.ext_area"), xsave);
                for x in 0..16 {
                    builder = builder.symbol(&format!(".t{k}.xmm{x}"), xsave + 160 + x * 16);
                }
            }
            if let Some(slot) = prog.symbol(&format!("t{k}_rsp_slot")) {
                builder = builder.symbol(&format!(".t{k}.rsp"), slot);
            }
            if let Some(slot) = prog.symbol(&format!("t{k}_rip_slot")) {
                builder = builder.symbol(&format!(".t{k}.rip"), slot);
            }
        }
    }
    builder
}

/// Generates a GNU-ld style linker script describing the ELFie layout —
/// gives users "explicit control over the process of linking an ELFie
/// object file with an object file containing user's extra code".
fn linker_script(pinball: &Pinball, runs: &[PageRun], layout: Option<&layout::Layout>) -> String {
    let mut s = String::new();
    s.push_str("/* Linker script generated by pinball2elf */\n");
    s.push_str(&format!(
        "/* pinball: {} region: {} */\n",
        pinball.meta.name, pinball.region.name
    ));
    if let Some(l) = layout {
        s.push_str(&format!("ENTRY(elfie_start) /* {:#x} */\n", l.startup_base));
    }
    s.push_str("SECTIONS\n{\n");
    if let Some(l) = layout {
        s.push_str(&format!(
            "  . = {:#x};\n  .text.startup : {{ *(.text.startup) }}\n",
            l.startup_base
        ));
        s.push_str(&format!(
            "  . = {:#x};\n  .data.elfie : {{ *(.data.elfie) }}\n",
            l.ctx_base
        ));
    }
    for run in runs {
        let exec = run.perm & 4 != 0;
        let prefix = if exec { ".text" } else { ".data" };
        let name = section_name(prefix, run.start);
        s.push_str(&format!(
            "  . = {:#x};\n  {name} : {{ *({name}) }} /* {} bytes, perm {:#o} */\n",
            run.start,
            run.byte_len(),
            run.perm
        ));
    }
    s.push_str("}\n");
    s
}
