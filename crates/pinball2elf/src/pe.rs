//! Pinball → PE (Portable Executable) conversion — the extension the paper
//! sketches in Section I: "since pinballs can be generated on operating
//! systems other than Linux, one can imagine tools similar to pinball2elf
//! that convert pinballs to other executable formats such as Portable
//! Executable (PE) format on Windows".
//!
//! This module implements that imagined `pinball2pe`: a real PE32+ writer
//! (DOS stub, COFF file header, PE32+ optional header, section table) that
//! lays the pinball's memory image out as sections. PE RVAs are 32-bit, so
//! pages cannot live at their original 64-bit virtual addresses the way
//! ELF sections can; instead every page run is placed at a packed RVA and
//! a `.pbmeta` section carries the (RVA → original VA, permissions) table
//! that Windows-side startup code would use to remap them — the same
//! shadow-copy technique the ELFie startup uses for its non-allocatable
//! sections. Thread contexts are serialised into a `.pbctx` section.
//!
//! There is no Windows loader in this reproduction, so PE output is a
//! faithful *container* (validated by [`PeFile::parse`] round-trips), not
//! a runnable artefact.

use elfie_pinball::Pinball;

/// PE machine id for the elfie-isa guest architecture (vendor range).
pub const PE_MACHINE_ELFIE: u16 = 0xE1F1;

const DOS_STUB_SIZE: u32 = 0x80;
const PE_SIG_OFFSET: u32 = DOS_STUB_SIZE;
const COFF_SIZE: u32 = 20;
const OPT_HDR_SIZE: u16 = 240;
const SECTION_HDR_SIZE: u32 = 40;
const FILE_ALIGN: u32 = 0x200;
const SECT_ALIGN: u32 = 0x1000;

/// Section characteristics flags.
mod characteristics {
    pub const CODE: u32 = 0x0000_0020;
    pub const INITIALIZED_DATA: u32 = 0x0000_0040;
    pub const MEM_EXECUTE: u32 = 0x2000_0000;
    pub const MEM_READ: u32 = 0x4000_0000;
    pub const MEM_WRITE: u32 = 0x8000_0000;
}

fn align_up(v: u32, a: u32) -> u32 {
    v.div_ceil(a) * a
}

/// A section in a PE image.
#[derive(Debug, Clone)]
pub struct PeSection {
    /// Section name (max 8 bytes; longer names are truncated).
    pub name: String,
    /// Relative virtual address.
    pub rva: u32,
    /// Raw contents.
    pub data: Vec<u8>,
    /// Section characteristics.
    pub characteristics: u32,
}

/// Minimal PE32+ writer.
#[derive(Debug, Clone, Default)]
pub struct PeBuilder {
    entry_rva: u32,
    image_base: u64,
    sections: Vec<PeSection>,
}

impl PeBuilder {
    /// Creates an empty builder.
    pub fn new() -> PeBuilder {
        PeBuilder {
            image_base: 0x1_4000_0000,
            ..PeBuilder::default()
        }
    }

    /// Sets the entry-point RVA.
    pub fn entry_rva(mut self, rva: u32) -> PeBuilder {
        self.entry_rva = rva;
        self
    }

    /// Sets the preferred image base.
    pub fn image_base(mut self, base: u64) -> PeBuilder {
        self.image_base = base;
        self
    }

    /// Appends a section (RVAs must be ascending and section-aligned).
    pub fn section(mut self, s: PeSection) -> PeBuilder {
        self.sections.push(s);
        self
    }

    /// Serialises the PE32+ image.
    pub fn build(self) -> Vec<u8> {
        let nsections = self.sections.len() as u16;
        let headers_size = align_up(
            PE_SIG_OFFSET
                + 4
                + COFF_SIZE
                + OPT_HDR_SIZE as u32
                + nsections as u32 * SECTION_HDR_SIZE,
            FILE_ALIGN,
        );

        // Assign raw file offsets.
        let mut raw_cursor = headers_size;
        let mut raws = Vec::with_capacity(self.sections.len());
        let mut image_size = SECT_ALIGN; // headers page
        for s in &self.sections {
            let raw_size = align_up(s.data.len() as u32, FILE_ALIGN);
            raws.push((raw_cursor, raw_size));
            raw_cursor += raw_size;
            image_size = image_size.max(s.rva + align_up(s.data.len().max(1) as u32, SECT_ALIGN));
        }

        let mut out = vec![0u8; raw_cursor as usize];
        // DOS header: "MZ" + e_lfanew.
        out[0] = b'M';
        out[1] = b'Z';
        out[0x3c..0x40].copy_from_slice(&PE_SIG_OFFSET.to_le_bytes());
        // PE signature.
        let p = PE_SIG_OFFSET as usize;
        out[p..p + 4].copy_from_slice(b"PE\0\0");
        // COFF file header.
        let c = p + 4;
        out[c..c + 2].copy_from_slice(&PE_MACHINE_ELFIE.to_le_bytes());
        out[c + 2..c + 4].copy_from_slice(&nsections.to_le_bytes());
        // timestamp, symtab ptr, nsyms stay zero.
        out[c + 16..c + 18].copy_from_slice(&OPT_HDR_SIZE.to_le_bytes());
        out[c + 18..c + 20].copy_from_slice(&0x0022u16.to_le_bytes()); // EXEC | LARGE_ADDR

        // PE32+ optional header.
        let o = c + COFF_SIZE as usize;
        out[o..o + 2].copy_from_slice(&0x020bu16.to_le_bytes()); // PE32+ magic
        out[o + 16..o + 20].copy_from_slice(&self.entry_rva.to_le_bytes());
        out[o + 24..o + 32].copy_from_slice(&self.image_base.to_le_bytes());
        out[o + 32..o + 36].copy_from_slice(&SECT_ALIGN.to_le_bytes());
        out[o + 36..o + 40].copy_from_slice(&FILE_ALIGN.to_le_bytes());
        out[o + 40..o + 42].copy_from_slice(&6u16.to_le_bytes()); // major OS version
        out[o + 48..o + 50].copy_from_slice(&6u16.to_le_bytes()); // major subsystem
        out[o + 56..o + 60].copy_from_slice(&align_up(image_size, SECT_ALIGN).to_le_bytes());
        out[o + 60..o + 64].copy_from_slice(&headers_size.to_le_bytes());
        out[o + 68..o + 70].copy_from_slice(&3u16.to_le_bytes()); // console subsystem

        // Section table + raw data.
        let mut sh = o + OPT_HDR_SIZE as usize;
        for (s, &(raw_off, raw_size)) in self.sections.iter().zip(&raws) {
            let name = s.name.as_bytes();
            let n = name.len().min(8);
            out[sh..sh + n].copy_from_slice(&name[..n]);
            out[sh + 8..sh + 12].copy_from_slice(&(s.data.len() as u32).to_le_bytes());
            out[sh + 12..sh + 16].copy_from_slice(&s.rva.to_le_bytes());
            out[sh + 16..sh + 20].copy_from_slice(&raw_size.to_le_bytes());
            out[sh + 20..sh + 24].copy_from_slice(&raw_off.to_le_bytes());
            out[sh + 36..sh + 40].copy_from_slice(&s.characteristics.to_le_bytes());
            sh += SECTION_HDR_SIZE as usize;
            out[raw_off as usize..raw_off as usize + s.data.len()].copy_from_slice(&s.data);
        }
        out
    }
}

/// Errors parsing a PE image.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PeParseError {
    /// Not an MZ/PE file.
    BadMagic,
    /// Structurally truncated.
    Truncated(&'static str),
    /// Not a PE32+ image.
    NotPe32Plus,
}

impl std::fmt::Display for PeParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PeParseError::BadMagic => write!(f, "bad MZ/PE magic"),
            PeParseError::Truncated(what) => write!(f, "truncated {what}"),
            PeParseError::NotPe32Plus => write!(f, "not a PE32+ image"),
        }
    }
}

impl std::error::Error for PeParseError {}

/// A parsed PE image (the subset the writer emits).
#[derive(Debug, Clone)]
pub struct PeFile {
    /// COFF machine id.
    pub machine: u16,
    /// Entry-point RVA.
    pub entry_rva: u32,
    /// Preferred image base.
    pub image_base: u64,
    /// Sections.
    pub sections: Vec<PeSection>,
}

impl PeFile {
    /// Parses a PE32+ image produced by [`PeBuilder`].
    ///
    /// # Errors
    /// Returns [`PeParseError`] for malformed images.
    pub fn parse(bytes: &[u8]) -> Result<PeFile, PeParseError> {
        if bytes.len() < 0x40 || bytes[0] != b'M' || bytes[1] != b'Z' {
            return Err(PeParseError::BadMagic);
        }
        let u32at = |off: usize| -> Result<u32, PeParseError> {
            bytes
                .get(off..off + 4)
                .map(|s| u32::from_le_bytes(s.try_into().expect("4 bytes")))
                .ok_or(PeParseError::Truncated("u32 field"))
        };
        let u16at = |off: usize| -> Result<u16, PeParseError> {
            bytes
                .get(off..off + 2)
                .map(|s| u16::from_le_bytes(s.try_into().expect("2 bytes")))
                .ok_or(PeParseError::Truncated("u16 field"))
        };
        let pe_off = u32at(0x3c)? as usize;
        if bytes.get(pe_off..pe_off + 4) != Some(b"PE\0\0") {
            return Err(PeParseError::BadMagic);
        }
        let coff = pe_off + 4;
        let machine = u16at(coff)?;
        let nsections = u16at(coff + 2)? as usize;
        let opt = coff + COFF_SIZE as usize;
        if u16at(opt)? != 0x020b {
            return Err(PeParseError::NotPe32Plus);
        }
        let entry_rva = u32at(opt + 16)?;
        let image_base = {
            let lo = u32at(opt + 24)? as u64;
            let hi = u32at(opt + 28)? as u64;
            lo | (hi << 32)
        };
        let mut sections = Vec::with_capacity(nsections);
        let mut sh = opt + OPT_HDR_SIZE as usize;
        for _ in 0..nsections {
            let name_bytes = bytes
                .get(sh..sh + 8)
                .ok_or(PeParseError::Truncated("section header"))?;
            let name = String::from_utf8_lossy(name_bytes)
                .trim_end_matches('\0')
                .to_string();
            let vsize = u32at(sh + 8)? as usize;
            let rva = u32at(sh + 12)?;
            let raw_off = u32at(sh + 20)? as usize;
            let characteristics = u32at(sh + 36)?;
            let data = bytes
                .get(raw_off..raw_off + vsize)
                .ok_or(PeParseError::Truncated("section data"))?
                .to_vec();
            sections.push(PeSection {
                name,
                rva,
                data,
                characteristics,
            });
            sh += SECTION_HDR_SIZE as usize;
        }
        Ok(PeFile {
            machine,
            entry_rva,
            image_base,
            sections,
        })
    }

    /// Finds a section by name.
    pub fn section(&self, name: &str) -> Option<&PeSection> {
        self.sections.iter().find(|s| s.name == name)
    }
}

/// One entry of the `.pbmeta` remap table: where a packed section's bytes
/// must live at run time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PeRemapEntry {
    /// RVA of the packed bytes inside the PE image.
    pub rva: u32,
    /// Original virtual address in the captured process.
    pub original_va: u64,
    /// Length in bytes.
    pub len: u64,
    /// Captured permission bits.
    pub perm: u8,
}

/// Converts a pinball into a PE32+ container: page runs packed at
/// ascending RVAs, a `.pbmeta` remap table, and a `.pbctx` thread-context
/// dump (the serialised pinball `.reg` data).
///
/// # Errors
/// Returns an error string when the pinball is not fat.
pub fn convert_pe(pinball: &Pinball) -> Result<Vec<u8>, String> {
    if !pinball.meta.fat {
        return Err("pinball is not fat; PE generation needs -log:fat pinballs".into());
    }
    let runs = pinball.image.consecutive_runs();
    let mut builder = PeBuilder::new();
    let mut rva = SECT_ALIGN; // first page after headers
    let mut meta = Vec::new();
    for (i, run) in runs.iter().enumerate() {
        let mut flags = characteristics::MEM_READ;
        if run.perm & 2 != 0 {
            flags |= characteristics::MEM_WRITE | characteristics::INITIALIZED_DATA;
        }
        if run.perm & 4 != 0 {
            flags |= characteristics::MEM_EXECUTE | characteristics::CODE;
        }
        meta.push(PeRemapEntry {
            rva,
            original_va: run.start,
            len: run.byte_len(),
            perm: run.perm,
        });
        builder = builder.section(PeSection {
            name: format!(".pb{i:03}"),
            rva,
            data: run.concat(),
            characteristics: flags,
        });
        rva += align_up(run.byte_len().max(1) as u32, SECT_ALIGN);
    }

    // .pbmeta: count + entries.
    let mut meta_bytes = Vec::with_capacity(8 + meta.len() * 21);
    meta_bytes.extend_from_slice(&(meta.len() as u64).to_le_bytes());
    for e in &meta {
        meta_bytes.extend_from_slice(&e.rva.to_le_bytes());
        meta_bytes.extend_from_slice(&e.original_va.to_le_bytes());
        meta_bytes.extend_from_slice(&e.len.to_le_bytes());
        meta_bytes.push(e.perm);
    }
    builder = builder.section(PeSection {
        name: ".pbmeta".into(),
        rva,
        data: meta_bytes,
        characteristics: characteristics::INITIALIZED_DATA | characteristics::MEM_READ,
    });
    rva += SECT_ALIGN;

    // .pbctx: thread contexts (tid, rip, rsp, gprs, flags, bases).
    let mut ctx = Vec::new();
    let live: Vec<_> = pinball.threads.iter().filter(|t| !t.spawned).collect();
    ctx.extend_from_slice(&(live.len() as u64).to_le_bytes());
    for t in &live {
        ctx.extend_from_slice(&(t.tid as u64).to_le_bytes());
        ctx.extend_from_slice(&t.regs.rip.to_le_bytes());
        ctx.extend_from_slice(&t.regs.rflags.to_le_bytes());
        ctx.extend_from_slice(&t.regs.fs_base.to_le_bytes());
        ctx.extend_from_slice(&t.regs.gs_base.to_le_bytes());
        for g in t.regs.gpr {
            ctx.extend_from_slice(&g.to_le_bytes());
        }
        ctx.extend_from_slice(&t.regs.xsave);
    }
    builder = builder.section(PeSection {
        name: ".pbctx".into(),
        rva,
        data: ctx,
        characteristics: characteristics::INITIALIZED_DATA | characteristics::MEM_READ,
    });

    Ok(builder.build())
}

/// Parses the `.pbmeta` remap table back out of a converted PE image.
pub fn read_remap_table(pe: &PeFile) -> Option<Vec<PeRemapEntry>> {
    let meta = pe.section(".pbmeta")?;
    let mut entries = Vec::new();
    let b = &meta.data;
    let n = u64::from_le_bytes(b.get(..8)?.try_into().ok()?) as usize;
    let mut off = 8;
    for _ in 0..n {
        let rva = u32::from_le_bytes(b.get(off..off + 4)?.try_into().ok()?);
        let va = u64::from_le_bytes(b.get(off + 4..off + 12)?.try_into().ok()?);
        let len = u64::from_le_bytes(b.get(off + 12..off + 20)?.try_into().ok()?);
        let perm = *b.get(off + 20)?;
        entries.push(PeRemapEntry {
            rva,
            original_va: va,
            len,
            perm,
        });
        off += 21;
    }
    Some(entries)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pe_builder_roundtrip() {
        let bytes = PeBuilder::new()
            .entry_rva(0x1000)
            .image_base(0x1_4000_0000)
            .section(PeSection {
                name: ".text".into(),
                rva: 0x1000,
                data: vec![1, 2, 3, 4],
                characteristics: characteristics::CODE
                    | characteristics::MEM_READ
                    | characteristics::MEM_EXECUTE,
            })
            .section(PeSection {
                name: ".data".into(),
                rva: 0x2000,
                data: vec![9; 100],
                characteristics: characteristics::INITIALIZED_DATA
                    | characteristics::MEM_READ
                    | characteristics::MEM_WRITE,
            })
            .build();
        assert_eq!(&bytes[0..2], b"MZ");
        let pe = PeFile::parse(&bytes).expect("parses");
        assert_eq!(pe.machine, PE_MACHINE_ELFIE);
        assert_eq!(pe.entry_rva, 0x1000);
        assert_eq!(pe.image_base, 0x1_4000_0000);
        assert_eq!(pe.sections.len(), 2);
        assert_eq!(pe.section(".text").unwrap().data, vec![1, 2, 3, 4]);
        assert_eq!(pe.section(".data").unwrap().data.len(), 100);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(
            PeFile::parse(&[0u8; 16]).unwrap_err(),
            PeParseError::BadMagic
        );
        assert_eq!(PeFile::parse(b"MZ").unwrap_err(), PeParseError::BadMagic);
        let mut ok = PeBuilder::new()
            .section(PeSection {
                name: ".a".into(),
                rva: 0x1000,
                data: vec![0; 8],
                characteristics: 0,
            })
            .build();
        ok.truncate(0x90);
        assert!(PeFile::parse(&ok).is_err());
    }
}
